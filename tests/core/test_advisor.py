"""Design advisor: rung interpolation and ranking."""

import pytest

from repro.core.advisor import (
    LadderRung,
    advisor_table,
    evaluate_rung,
    recommend_design,
)
from repro.errors import AnalysisError
from tests.core.test_equal_performance import linear_grid


class TestEvaluateRung:
    def test_exact_grid_point(self):
        grid = linear_grid()  # sizes (4096, 8192, 16384), cycles 20..80
        rung = LadderRung(total_size_bytes=8192, cycle_ns=40.0)
        assert evaluate_rung(grid, rung) == pytest.approx(
            grid.execution_ns[1, 1]
        )

    def test_interpolates_between_clocks(self):
        grid = linear_grid()
        value = evaluate_rung(grid, LadderRung(8192, 30.0))
        lo = grid.execution_ns[1, 0]
        hi = grid.execution_ns[1, 1]
        assert lo < value < hi

    def test_interpolates_between_sizes(self):
        grid = linear_grid()
        mid = evaluate_rung(
            grid, LadderRung(int(4096 * 2 ** 0.5), 40.0)
        )
        assert grid.execution_ns[1, 1] < mid < grid.execution_ns[0, 1]

    def test_out_of_grid_rejected(self):
        grid = linear_grid()
        with pytest.raises(AnalysisError):
            evaluate_rung(grid, LadderRung(1024, 40.0))
        with pytest.raises(AnalysisError):
            evaluate_rung(grid, LadderRung(8192, 200.0))

    def test_rung_validation(self):
        with pytest.raises(AnalysisError):
            LadderRung(0, 40.0)


class TestRecommend:
    def test_paper_style_decision(self):
        """On the analytic grid (exec = t x (1 + 8/2^i)), a 4x bigger
        cache at +10ns beats the small fast one — the §3 example."""
        grid = linear_grid()
        ladder = [
            LadderRung(4096, 40.0),    # small cache, fast RAMs
            LadderRung(16384, 50.0),   # 4x cache, 10ns slower
        ]
        ranking = recommend_design(grid, ladder)
        assert ranking[0].rung.total_size_bytes == 16384
        assert ranking[0].relative_to_best == 1.0
        assert ranking[1].relative_to_best > 1.0

    def test_ranking_sorted(self):
        grid = linear_grid()
        ladder = [LadderRung(s, 40.0) for s in (4096, 8192, 16384)]
        ranking = recommend_design(grid, ladder)
        execs = [ev.execution_ns for ev in ranking]
        assert execs == sorted(execs)

    def test_empty_ladder_rejected(self):
        with pytest.raises(AnalysisError):
            recommend_design(linear_grid(), [])

    def test_table_renders(self):
        grid = linear_grid()
        ranking = recommend_design(grid, [LadderRung(4096, 40.0)])
        text = advisor_table(ranking)
        assert "Rank" in text and "4KB" in text
