"""Metrics containers and geometric-mean aggregation."""

import numpy as np
import pytest

from repro.core.metrics import (
    BlockSizeCurve,
    SpeedSizeGrid,
    TraceRunSummary,
    aggregate,
    geometric_mean,
)
from repro.errors import AnalysisError


def summary(trace="t", cycle_ns=40.0, cycles=1000, n_refs=500, miss=0.1):
    return TraceRunSummary(
        trace=trace, cycle_ns=cycle_ns, cycles=cycles, n_refs=n_refs,
        read_miss_ratio=miss, load_miss_ratio=miss * 2,
        ifetch_miss_ratio=miss / 2, read_traffic_ratio=miss * 4,
        write_traffic_ratio_full=0.05, write_traffic_ratio_dirty=0.02,
    )


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, 0.0])


class TestTraceRunSummary:
    def test_execution_time(self):
        s = summary(cycles=1000, cycle_ns=40.0)
        assert s.execution_time_ns == pytest.approx(40_000.0)

    def test_cycles_per_reference(self):
        assert summary(cycles=1000, n_refs=500).cycles_per_reference == 2.0


class TestAggregate:
    def test_geometric_means(self):
        a = summary(cycles=1000)
        b = summary(cycles=4000)
        agg = aggregate([a, b])
        assert agg.execution_time_ns == pytest.approx(
            geometric_mean([a.execution_time_ns, b.execution_time_ns])
        )
        assert agg.n_traces == 2

    def test_zero_ratio_floored_not_fatal(self):
        s = summary(miss=0.0)
        agg = aggregate([s])
        assert agg.read_miss_ratio > 0.0

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            aggregate([])


def make_grid(sizes=(4096, 8192), cycles=(20.0, 40.0), exec_fn=None):
    exec_fn = exec_fn or (lambda i, j: 100.0 * (i + 1) * (j + 1))
    execution = np.array(
        [[exec_fn(i, j) for j in range(len(cycles))] for i in range(len(sizes))]
    )
    n = (len(sizes), len(cycles))
    return SpeedSizeGrid(
        total_sizes=list(sizes),
        cycle_times_ns=list(cycles),
        execution_ns=execution,
        cycles_per_reference=np.ones(n),
        read_miss_ratio=np.full(len(sizes), 0.1),
        load_miss_ratio=np.full(len(sizes), 0.1),
        ifetch_miss_ratio=np.full(len(sizes), 0.1),
        read_traffic_ratio=np.full(len(sizes), 0.4),
        write_traffic_ratio_full=np.full(len(sizes), 0.05),
        write_traffic_ratio_dirty=np.full(len(sizes), 0.02),
    )


class TestSpeedSizeGrid:
    def test_normalized_min_is_one(self):
        grid = make_grid()
        assert grid.normalized().min() == pytest.approx(1.0)

    def test_indices(self):
        grid = make_grid()
        assert grid.size_index(8192) == 1
        assert grid.cycle_index(40.0) == 1

    def test_unknown_lookup_rejected(self):
        grid = make_grid()
        with pytest.raises(AnalysisError):
            grid.size_index(999)
        with pytest.raises(AnalysisError):
            grid.cycle_index(999.0)

    def test_shape_validated(self):
        with pytest.raises(AnalysisError):
            SpeedSizeGrid(
                total_sizes=[1, 2],
                cycle_times_ns=[1.0],
                execution_ns=np.ones((1, 1)),
                cycles_per_reference=np.ones((1, 1)),
                read_miss_ratio=np.ones(2),
                load_miss_ratio=np.ones(2),
                ifetch_miss_ratio=np.ones(2),
                read_traffic_ratio=np.ones(2),
                write_traffic_ratio_full=np.ones(2),
                write_traffic_ratio_dirty=np.ones(2),
            )

    def test_axes_must_be_sorted(self):
        with pytest.raises(AnalysisError):
            make_grid(sizes=(8192, 4096))

    def test_normalized_rejects_zero_best_time(self):
        grid = make_grid(exec_fn=lambda i, j: 0.0 if (i, j) == (0, 0) else 100.0)
        with pytest.raises(AnalysisError, match="cannot normalize"):
            grid.normalized()


class TestBlockSizeCurve:
    def test_best_block(self):
        curve = BlockSizeCurve(
            latency_ns=260.0, transfer_rate=1.0,
            block_sizes_words=[2, 4, 8],
            execution_ns=np.array([3.0, 1.0, 2.0]),
            load_miss_ratio=np.array([0.3, 0.2, 0.1]),
            ifetch_miss_ratio=np.array([0.1, 0.05, 0.02]),
        )
        assert curve.best_block_size_words == 4

    def test_parallel_arrays_enforced(self):
        with pytest.raises(AnalysisError):
            BlockSizeCurve(
                latency_ns=260.0, transfer_rate=1.0,
                block_sizes_words=[2, 4],
                execution_ns=np.array([1.0]),
                load_miss_ratio=np.array([0.1, 0.2]),
                ifetch_miss_ratio=np.array([0.1, 0.2]),
            )
