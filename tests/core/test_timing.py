"""Temporal parameter tests — including the exact Table 2 reproduction."""

import pytest

from repro.core.timing import DEFAULT_CYCLE_NS, CacheTiming, MemoryTiming
from repro.errors import ConfigurationError

#: The paper's Table 2: cycle time -> (read, write, recovery) cycles for
#: the 180/100/120 ns memory with 1 W/cycle transfer and 4 W blocks.
PAPER_TABLE2 = {
    20: (14, 10, 6),
    24: (13, 10, 5),
    28: (12, 9, 5),
    32: (11, 9, 4),
    36: (10, 8, 4),
    40: (10, 8, 3),
    48: (9, 8, 3),
    52: (9, 7, 3),
    60: (8, 7, 2),
}


class TestTable2:
    @pytest.mark.parametrize("cycle_ns,expected", sorted(PAPER_TABLE2.items()))
    def test_read_write_recovery_match_paper(self, cycle_ns, expected):
        memory = MemoryTiming()
        got = (
            memory.read_cycles(4, cycle_ns),
            memory.write_cycles(4, cycle_ns),
            memory.recovery_cycles(cycle_ns),
        )
        assert got == expected

    def test_default_latency_is_six_cycles_at_40ns(self):
        # §2: "the latency becomes 1 + ceil(180ns/40ns) or 6 cycles".
        assert MemoryTiming().latency_cycles(40.0) == 6

    def test_footnote13_260ns_gives_12_cycle_read(self):
        # Footnote 13: 260 ns latency -> 12-cycle read for a 4 W block.
        memory = MemoryTiming().with_latency_ns(260.0)
        assert memory.read_cycles(4, 40.0) == 12


class TestTransferCycles:
    def test_one_word_per_cycle(self):
        assert MemoryTiming(transfer_rate=1.0).transfer_cycles(4) == 4

    def test_fast_bus_minimum_one_cycle(self):
        # "the minimum transfer time is one cycle, even if that is using
        # only a quarter of backplane's capacity."
        assert MemoryTiming(transfer_rate=4.0).transfer_cycles(1) == 1
        assert MemoryTiming(transfer_rate=4.0).transfer_cycles(4) == 1
        assert MemoryTiming(transfer_rate=4.0).transfer_cycles(8) == 2

    def test_slow_bus(self):
        assert MemoryTiming(transfer_rate=0.25).transfer_cycles(4) == 16

    def test_fractional_rounds_up(self):
        assert MemoryTiming(transfer_rate=4.0).transfer_cycles(6) == 2

    def test_rejects_nonpositive_words(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming().transfer_cycles(0)


class TestWriteTiming:
    def test_handoff_is_address_plus_transfer(self):
        memory = MemoryTiming()
        assert memory.write_handoff_cycles(4) == 5

    def test_write_includes_internal_op(self):
        memory = MemoryTiming()
        # handoff (5) + ceil(100/40) (3) = 8 cycles at 40 ns.
        assert memory.write_cycles(4, 40.0) == 8


class TestVariants:
    def test_with_latency_sets_all_three(self):
        memory = MemoryTiming().with_latency_ns(260.0)
        assert memory.latency_ns == memory.write_op_ns == memory.recovery_ns == 260.0

    def test_with_transfer_rate(self):
        assert MemoryTiming().with_transfer_rate(0.5).transfer_rate == 0.5

    def test_speed_product(self):
        # la (cycles, incl. address) x tr.
        memory = MemoryTiming(transfer_rate=2.0)
        assert memory.speed_product(40.0) == pytest.approx(12.0)


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(latency_ns=-1.0)

    def test_zero_transfer_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(transfer_rate=0.0)

    def test_cache_timing_minimum_one_cycle(self):
        with pytest.raises(ConfigurationError):
            CacheTiming(read_hit_cycles=0)

    def test_default_cycle(self):
        assert DEFAULT_CYCLE_NS == 40.0
