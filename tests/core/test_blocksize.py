"""Block-size optimization: parabola fit and the la x tr product law."""

import numpy as np
import pytest

from repro.core.blocksize import (
    balance_block_size_words,
    fit_parabola_minimum,
    optimal_block_size_words,
    product_law_points,
    product_law_spread,
)
from repro.core.metrics import BlockSizeCurve
from repro.errors import AnalysisError


def curve_from(exec_values, blocks=(2, 4, 8, 16, 32)):
    exec_values = np.asarray(exec_values, dtype=float)
    return BlockSizeCurve(
        latency_ns=260.0, transfer_rate=1.0,
        block_sizes_words=list(blocks),
        execution_ns=exec_values,
        load_miss_ratio=np.linspace(0.3, 0.05, len(blocks)),
        ifetch_miss_ratio=np.linspace(0.1, 0.01, len(blocks)),
    )


class TestParabolaFit:
    def test_exact_vertex(self):
        # y = (x - 3)^2 + 1 through x = 2, 3, 4.
        xs = [2.0, 3.0, 4.0]
        ys = [(x - 3.0) ** 2 + 1.0 for x in xs]
        assert fit_parabola_minimum(xs, ys) == pytest.approx(3.0)

    def test_rejects_wrong_arity(self):
        with pytest.raises(AnalysisError):
            fit_parabola_minimum([1.0, 2.0], [1.0, 2.0])

    def test_rejects_downward_parabola(self):
        xs = [1.0, 2.0, 3.0]
        ys = [-(x - 2.0) ** 2 for x in xs]
        with pytest.raises(AnalysisError):
            fit_parabola_minimum(xs, ys)


class TestOptimalBlockSize:
    def test_symmetric_minimum_recovers_sampled_point(self):
        # Symmetric in log2 around 8W.
        curve = curve_from([4.0, 2.0, 1.0, 2.0, 4.0])
        assert optimal_block_size_words(curve) == pytest.approx(8.0)

    def test_asymmetric_minimum_interpolates(self):
        curve = curve_from([4.0, 2.0, 1.0, 1.2, 4.0])
        opt = optimal_block_size_words(curve)
        assert 8.0 < opt < 16.0

    def test_edge_minimum_returns_edge(self):
        rising = curve_from([1.0, 2.0, 3.0, 4.0, 5.0])
        assert optimal_block_size_words(rising) == 2.0
        falling = curve_from([5.0, 4.0, 3.0, 2.0, 1.0])
        assert optimal_block_size_words(falling) == 32.0

    def test_requires_three_points(self):
        curve = curve_from([2.0, 1.0], blocks=(2, 4))
        with pytest.raises(AnalysisError):
            optimal_block_size_words(curve)


class TestBalanceLine:
    def test_balance_is_product(self):
        assert balance_block_size_words(6, 2.0) == pytest.approx(12.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            balance_block_size_words(0, 1.0)


class TestProductLaw:
    def _curves(self):
        # Optima depend only on la*tr: construct two memories with the
        # same product and identical curves, one with a different one.
        same_a = curve_from([4.0, 2.0, 1.0, 2.0, 4.0])
        same_b = curve_from([4.1, 2.1, 1.0, 2.1, 4.1])
        other = curve_from([9.0, 4.0, 2.0, 1.0, 2.0])
        return {
            (4, 1.0): same_a,
            (8, 0.5): same_b,
            (16, 1.0): other,
        }

    def test_points_sorted_by_product(self):
        points = product_law_points(self._curves())
        products = [p.speed_product for p in points]
        assert products == sorted(products)

    def test_balance_column(self):
        points = product_law_points(self._curves())
        for p in points:
            assert p.balance_block_words == pytest.approx(
                p.latency_cycles * p.transfer_rate
            )

    def test_spread_small_when_law_holds(self):
        points = product_law_points(self._curves())
        assert product_law_spread(points) < 0.1

    def test_spread_rejects_empty(self):
        with pytest.raises(AnalysisError):
            product_law_spread([])
