"""ASCII chart rendering."""

import pytest

from repro.core.charts import ascii_chart, sparkline
from repro.errors import AnalysisError


class TestAsciiChart:
    def test_dimensions(self):
        text = ascii_chart(
            {"a": [(1, 1), (2, 2), (3, 3)]}, width=20, height=6,
        )
        body = [l for l in text.splitlines() if "|" in l]
        assert len(body) == 6
        assert all(len(l.split("|")[1]) == 20 for l in body)

    def test_markers_appear(self):
        text = ascii_chart(
            {"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]},
            width=10, height=5,
        )
        assert "o=up" in text and "x=down" in text
        assert "o" in text and "x" in text

    def test_monotone_series_renders_monotone(self):
        text = ascii_chart({"a": [(i, i) for i in range(1, 9)]},
                           width=16, height=8)
        rows = [l.split("|")[1] for l in text.splitlines() if "|" in l]
        columns = sorted(r.index("o") for r in rows if "o" in r)
        # Higher rows (earlier lines) hold larger y -> larger x.
        positions = [r.index("o") for r in rows if "o" in r]
        assert positions == sorted(positions, reverse=True)

    def test_log_axes(self):
        text = ascii_chart(
            {"a": [(1, 1), (10, 10), (100, 100)]},
            width=12, height=5, log_x=True, log_y=True,
        )
        assert "(log x)" in text and "(log y)" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            ascii_chart({"a": [(0, 1)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_chart({})
        with pytest.raises(AnalysisError):
            ascii_chart({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_chart({"a": [(1, 1)]}, width=2, height=2)

    def test_title(self):
        text = ascii_chart({"a": [(1, 1)]}, title="T")
        assert text.splitlines()[0] == "T"


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_values(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            sparkline([])
