"""ASCII report rendering."""

import numpy as np
import pytest

from repro.core.report import (
    cycle_labels,
    format_grid,
    format_series,
    format_table,
    size_labels,
)
from repro.errors import AnalysisError
from repro.units import KB, MB


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["A", "Bee"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert lines[0].endswith("Bee")
        assert set(lines[1]) <= {"-", " "}
        assert "-" in lines[1]
        assert lines[-1].endswith("-")  # None renders as a dash

    def test_title(self):
        text = format_table(["A"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_validated(self):
        with pytest.raises(AnalysisError):
            format_table(["A", "B"], [[1]])

    def test_nan_renders_as_dash(self):
        text = format_table(["A"], [[float("nan")]])
        assert text.splitlines()[-1].strip() == "-"

    def test_precision(self):
        text = format_table(["A"], [[1.23456]], precision=2)
        assert "1.23" in text and "1.235" not in text


class TestFormatGrid:
    def test_labels_and_values(self):
        text = format_grid(["r1", "r2"], ["c1", "c2"],
                           np.array([[1.0, 2.0], [3.0, 4.0]]),
                           corner="X")
        assert "X" in text and "r2" in text and "c2" in text

    def test_shape_validated(self):
        with pytest.raises(AnalysisError):
            format_grid(["r1"], ["c1", "c2"], np.ones((2, 2)))


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series([1, 2], [10.0, 20.0], "x", "y")
        assert "x" in text and "y" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_series([1], [1, 2], "x", "y")


class TestLabels:
    def test_size_labels(self):
        assert size_labels([4 * KB, 2 * MB]) == ["4KB", "2MB"]

    def test_cycle_labels(self):
        assert cycle_labels([20.0, 56.0]) == ["20ns", "56ns"]
