"""Sweep drivers: structure, determinism, and parallel equivalence."""

import pytest

from repro.core.sweep import (
    run_associativity_sweeps,
    run_blocksize_sweep,
    run_functional_passes,
    run_point,
    run_speed_size_sweep,
)
from repro.errors import AnalysisError
from repro.sim.config import baseline_config
from repro.trace.suite import build_suite
from repro.units import KB


@pytest.fixture(scope="module")
def small_suite():
    return build_suite(length=15_000, names=["mu3", "rd2n4"])


class TestSpeedSizeSweep:
    def test_grid_structure(self, small_suite):
        grid = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0]
        )
        assert grid.total_sizes == [4 * KB, 16 * KB]
        assert grid.cycle_times_ns == [20.0, 40.0]
        assert grid.execution_ns.shape == (2, 2)
        assert (grid.execution_ns > 0).all()

    def test_axes_get_sorted(self, small_suite):
        grid = run_speed_size_sweep(
            small_suite, [8 * KB, 2 * KB], [40.0, 20.0]
        )
        assert grid.total_sizes == [4 * KB, 16 * KB]

    def test_deterministic(self, small_suite):
        a = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        b = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        assert (a.execution_ns == b.execution_ns).all()

    def test_accepts_mapping_or_sequence(self, small_suite):
        a = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        b = run_speed_size_sweep(
            list(small_suite.values()), [2 * KB], [40.0]
        )
        assert (a.execution_ns == b.execution_ns).all()

    def test_rejects_empty_traces(self):
        with pytest.raises(AnalysisError):
            run_speed_size_sweep([], [2 * KB], [40.0])

    def test_parallel_equals_serial(self, small_suite):
        serial = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], n_jobs=1
        )
        parallel = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], n_jobs=2
        )
        assert (serial.execution_ns == parallel.execution_ns).all()
        assert (serial.read_miss_ratio == parallel.read_miss_ratio).all()


class TestAssociativitySweeps:
    def test_one_grid_per_assoc(self, small_suite):
        grids = run_associativity_sweeps(
            small_suite, [2 * KB], [40.0], assocs=(1, 2)
        )
        assert set(grids) == {1, 2}


class TestBlocksizeSweep:
    def test_keys_and_curves(self, small_suite):
        curves = run_blocksize_sweep(
            small_suite, [4, 8], [180.0], [1.0],
            cache_size_each_bytes=8 * KB,
        )
        # 180ns at 40ns clock quantizes to 5 cycles (plus the address
        # cycle inside the simulated read).
        assert set(curves) == {(5, 1.0)}
        curve = curves[(5, 1.0)]
        assert curve.block_sizes_words == [4, 8]

    def test_parallel_equals_serial(self, small_suite):
        kwargs = dict(
            block_sizes_words=[4, 8], latencies_ns=[180.0],
            transfer_rates=[1.0], cache_size_each_bytes=8 * KB,
        )
        serial = run_blocksize_sweep(small_suite, n_jobs=1, **kwargs)
        parallel = run_blocksize_sweep(small_suite, n_jobs=2, **kwargs)
        for key in serial:
            assert (
                serial[key].execution_ns == parallel[key].execution_ns
            ).all()


class TestRunFunctionalPasses:
    def test_serial_and_parallel_agree(self, small_suite):
        trace = next(iter(small_suite.values()))
        config = baseline_config(cache_size_bytes=2 * KB)
        jobs = [(config, trace, 0), (config.with_cache_sizes(8 * KB), trace, 0)]
        serial = run_functional_passes(jobs, n_jobs=1)
        parallel = run_functional_passes(jobs, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert a.ev_gap == b.ev_gap
            assert a.icache == b.icache
            assert a.dcache == b.dcache
