"""Sweep drivers: structure, determinism, and parallel equivalence."""

import pytest

from repro.core.sweep import (
    run_associativity_sweeps,
    run_blocksize_sweep,
    run_functional_passes,
    run_point,
    run_speed_size_sweep,
)
from repro.errors import AnalysisError
from repro.sim.config import baseline_config
from repro.sim.replaykernel import KernelStats
from repro.trace.suite import build_suite
from repro.units import KB


@pytest.fixture(scope="module")
def small_suite():
    return build_suite(length=15_000, names=["mu3", "rd2n4"])


class TestSpeedSizeSweep:
    def test_grid_structure(self, small_suite):
        grid = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0]
        )
        assert grid.total_sizes == [4 * KB, 16 * KB]
        assert grid.cycle_times_ns == [20.0, 40.0]
        assert grid.execution_ns.shape == (2, 2)
        assert (grid.execution_ns > 0).all()

    def test_axes_get_sorted(self, small_suite):
        grid = run_speed_size_sweep(
            small_suite, [8 * KB, 2 * KB], [40.0, 20.0]
        )
        assert grid.total_sizes == [4 * KB, 16 * KB]

    def test_deterministic(self, small_suite):
        a = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        b = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        assert (a.execution_ns == b.execution_ns).all()

    def test_accepts_mapping_or_sequence(self, small_suite):
        a = run_speed_size_sweep(small_suite, [2 * KB], [40.0])
        b = run_speed_size_sweep(
            list(small_suite.values()), [2 * KB], [40.0]
        )
        assert (a.execution_ns == b.execution_ns).all()

    def test_rejects_empty_traces(self):
        with pytest.raises(AnalysisError):
            run_speed_size_sweep([], [2 * KB], [40.0])

    def test_parallel_equals_serial(self, small_suite):
        serial = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], n_jobs=1
        )
        parallel = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], n_jobs=2
        )
        assert (serial.execution_ns == parallel.execution_ns).all()
        assert (serial.read_miss_ratio == parallel.read_miss_ratio).all()

    def test_replay_kernel_equals_scalar(self, small_suite):
        kernel_stats = KernelStats()
        scalar_stats = KernelStats()
        kernel = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0, 56.0],
            use_replay_kernel=True, kernel_stats=kernel_stats,
        )
        scalar = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0, 56.0],
            use_replay_kernel=False, kernel_stats=scalar_stats,
        )
        assert (kernel.execution_ns == scalar.execution_ns).all()
        assert (
            kernel.cycles_per_reference == scalar.cycles_per_reference
        ).all()
        assert (kernel.read_miss_ratio == scalar.read_miss_ratio).all()
        # 2 traces x 2 sizes, each priced at 3 clocks.
        assert kernel_stats.batch_outcomes == 12
        assert kernel_stats.scalar_replays == 0
        assert scalar_stats.batch_outcomes == 0
        assert scalar_stats.scalar_replays == 12

    def test_replay_jobs_equal_serial(self, small_suite):
        serial = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], replay_jobs=1
        )
        sharded = run_speed_size_sweep(
            small_suite, [2 * KB, 8 * KB], [20.0, 40.0], replay_jobs=2
        )
        assert (serial.execution_ns == sharded.execution_ns).all()
        assert (
            serial.cycles_per_reference == sharded.cycles_per_reference
        ).all()


class TestAssociativitySweeps:
    def test_one_grid_per_assoc(self, small_suite):
        grids = run_associativity_sweeps(
            small_suite, [2 * KB], [40.0], assocs=(1, 2)
        )
        assert set(grids) == {1, 2}


class TestBlocksizeSweep:
    def test_keys_and_curves(self, small_suite):
        curves = run_blocksize_sweep(
            small_suite, [4, 8], [180.0], [1.0],
            cache_size_each_bytes=8 * KB,
        )
        # 180ns at 40ns clock quantizes to 5 cycles (plus the address
        # cycle inside the simulated read).
        assert set(curves) == {(5, 1.0)}
        curve = curves[(5, 1.0)]
        assert curve.block_sizes_words == [4, 8]

    def test_parallel_equals_serial(self, small_suite):
        kwargs = dict(
            block_sizes_words=[4, 8], latencies_ns=[180.0],
            transfer_rates=[1.0], cache_size_each_bytes=8 * KB,
        )
        serial = run_blocksize_sweep(small_suite, n_jobs=1, **kwargs)
        parallel = run_blocksize_sweep(small_suite, n_jobs=2, **kwargs)
        for key in serial:
            assert (
                serial[key].execution_ns == parallel[key].execution_ns
            ).all()

    def test_replay_kernel_equals_scalar(self, small_suite):
        kwargs = dict(
            block_sizes_words=[4, 8], latencies_ns=[100.0, 180.0],
            transfer_rates=[1.0, 2.0], cache_size_each_bytes=8 * KB,
        )
        kernel = run_blocksize_sweep(
            small_suite, use_replay_kernel=True, **kwargs
        )
        scalar = run_blocksize_sweep(
            small_suite, use_replay_kernel=False, **kwargs
        )
        assert set(kernel) == set(scalar)
        for key in kernel:
            assert (
                kernel[key].execution_ns == scalar[key].execution_ns
            ).all()
            assert (
                kernel[key].load_miss_ratio == scalar[key].load_miss_ratio
            ).all()

    def test_colliding_quantized_keys_deduped(self, small_suite):
        # 180 ns and 190 ns both quantize to 5 cycles at a 40 ns clock;
        # the sweep must price the collision once and keep one curve.
        curves = run_blocksize_sweep(
            small_suite, [4, 8], [180.0, 190.0], [1.0],
            cache_size_each_bytes=8 * KB,
        )
        assert set(curves) == {(5, 1.0)}
        reference = run_blocksize_sweep(
            small_suite, [4, 8], [180.0], [1.0],
            cache_size_each_bytes=8 * KB,
        )
        assert (
            curves[(5, 1.0)].execution_ns
            == reference[(5, 1.0)].execution_ns
        ).all()


class TestRunFunctionalPasses:
    def test_serial_and_parallel_agree(self, small_suite):
        trace = next(iter(small_suite.values()))
        config = baseline_config(cache_size_bytes=2 * KB)
        jobs = [(config, trace, 0), (config.with_cache_sizes(8 * KB), trace, 0)]
        serial = run_functional_passes(jobs, n_jobs=1)
        parallel = run_functional_passes(jobs, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert a.ev_gap == b.ev_gap
            assert a.icache == b.icache
            assert a.dcache == b.dcache

    def test_parallel_results_stay_in_job_order(self, small_suite):
        """Each position must hold *its* job's stream — mixed traces and
        configs so any permutation would be visible in the labels."""
        traces = list(small_suite.values())
        configs = [
            baseline_config(cache_size_bytes=2 * KB),
            baseline_config(cache_size_bytes=8 * KB),
        ]
        jobs = [
            (config, trace, 0) for trace in traces for config in configs
        ]
        results = run_functional_passes(jobs, n_jobs=2)
        for (config, trace, _seed), stream in zip(jobs, results):
            assert stream.trace_name == trace.name
            assert stream.config_summary == config.describe()

    def test_pack_dedupes_traces_by_content(self, small_suite):
        from repro.core.sweep import _pack_pass_jobs

        traces = list(small_suite.values())
        config = baseline_config(cache_size_bytes=2 * KB)
        jobs = [(config, traces[k % 2], k) for k in range(4)]
        packed, unique = _pack_pass_jobs(jobs, range(4))
        # each distinct trace ships to the pool exactly once
        assert len(unique) == 2
        assert [slot for _, _, slot, _ in packed] == [0, 1, 0, 1]
        assert [index for index, _, _, _ in packed] == [0, 1, 2, 3]

    def test_couplets_keyed_by_fingerprint_not_identity(self, small_suite):
        """Regression: the couplet memo was once keyed by ``id(trace)``;
        CPython reuses ids, so a recycled id could pair trace A's
        couplets with trace B.  Keying by content fingerprint means a
        prepaired stream is only ever applied to its own trace — a map
        carrying a *wrong* stream under a foreign key must be ignored."""
        from repro.core.sweep import _pair_map
        from repro.cpu.processor import pair_couplets

        traces = list(small_suite.values())
        assert set(_pair_map(traces)) == {
            t.content_fingerprint() for t in traces
        }

        config = baseline_config(cache_size_bytes=2 * KB)
        jobs = [(config, traces[0], 0)]
        baseline = run_functional_passes(jobs)
        # wrong stream, foreign key: must not be picked up
        decoy = {"0" * 16: pair_couplets(traces[1])}
        poisoned = run_functional_passes(jobs, couplets=decoy)
        # right stream, right key: same answer either way
        prepaired = run_functional_passes(
            jobs, couplets=_pair_map([traces[0]])
        )
        for streams in (poisoned, prepaired):
            assert streams[0].ev_gap == baseline[0].ev_gap
            assert streams[0].icache == baseline[0].icache
            assert streams[0].dcache == baseline[0].dcache

    def test_cache_hits_skip_simulation(self, tmp_path, small_suite):
        from repro.sim.passcache import PassCache

        trace = next(iter(small_suite.values()))
        configs = [
            baseline_config(cache_size_bytes=2 * KB),
            baseline_config(cache_size_bytes=8 * KB),
        ]
        jobs = [(config, trace, 0) for config in configs]
        cold_cache = PassCache(tmp_path / "pc")
        cold = run_functional_passes(jobs, cache=cold_cache)
        assert cold_cache.counters.misses == 2
        assert cold_cache.counters.puts == 2

        warm_cache = PassCache(tmp_path / "pc")
        warm = run_functional_passes(jobs, cache=warm_cache)
        assert warm_cache.counters.hits == 2
        assert warm_cache.counters.misses == 0
        for a, b in zip(cold, warm):
            assert a.ev_gap == b.ev_gap
            assert a.icache == b.icache
            assert a.dcache == b.dcache

    def test_parallel_path_fills_only_cache_misses(
        self, tmp_path, small_suite
    ):
        from repro.sim.passcache import PassCache

        trace = next(iter(small_suite.values()))
        configs = [
            baseline_config(cache_size_bytes=2 * KB),
            baseline_config(cache_size_bytes=4 * KB),
            baseline_config(cache_size_bytes=8 * KB),
        ]
        jobs = [(config, trace, 0) for config in configs]
        cache = PassCache(tmp_path / "pc")
        # pre-seed one entry; the pool should only run the other two
        seeded = run_functional_passes(jobs[:1], cache=cache)
        mixed = run_functional_passes(jobs, n_jobs=2, cache=cache)
        assert cache.counters.hits == 1
        assert cache.counters.puts == 3
        assert mixed[0].ev_gap == seeded[0].ev_gap
        for (config, _trace, _seed), stream in zip(jobs, mixed):
            assert stream.config_summary == config.describe()
