"""Analytic first-order models and cross-checks against the simulator."""

import numpy as np
import pytest

from repro.core.analytic import (
    MissPowerLaw,
    analytic_optimal_block_words,
    crossover_speed_product,
    cycles_per_reference_model,
    fit_miss_power_law,
    mean_read_time_cycles,
)
from repro.errors import AnalysisError


class TestMeanReadTime:
    def test_formula(self):
        # hit 1 + 0.1 x (6 + 4/1) = 2.0 — the paper's §3 example of a
        # 10% miss rate with a 10-cycle penalty costing 2 cycles/read.
        assert mean_read_time_cycles(0.1, 6.0, 4, 1.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            mean_read_time_cycles(-0.1, 6.0, 4, 1.0)
        with pytest.raises(AnalysisError):
            mean_read_time_cycles(0.1, 6.0, 0, 1.0)


class TestPowerLawFit:
    def test_exact_recovery(self):
        law = MissPowerLaw(coefficient=0.4, alpha=0.5)
        blocks = [2.0, 4.0, 8.0, 16.0]
        assert fit_miss_power_law(blocks, [law(b) for b in blocks]).alpha \
            == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_miss_power_law([2.0], [0.1])
        with pytest.raises(AnalysisError):
            fit_miss_power_law([2.0, 4.0], [0.1, -0.1])


class TestAnalyticOptimum:
    def test_closed_form(self):
        # alpha = 0.5 -> BS* = la x tr exactly (the balance line!).
        law = MissPowerLaw(coefficient=0.2, alpha=0.5)
        assert analytic_optimal_block_words(law, 6.0, 1.0) == pytest.approx(6.0)

    def test_is_a_function_of_the_product_only(self):
        law = MissPowerLaw(coefficient=0.2, alpha=0.4)
        a = analytic_optimal_block_words(law, 8.0, 0.5)
        b = analytic_optimal_block_words(law, 2.0, 2.0)
        assert a == pytest.approx(b)

    def test_is_the_true_minimum(self):
        law = MissPowerLaw(coefficient=0.3, alpha=0.6)
        best = analytic_optimal_block_words(law, 7.0, 1.0)
        t_best = mean_read_time_cycles(law(best), 7.0, best, 1.0)
        for factor in (0.5, 0.8, 1.25, 2.0):
            other = best * factor
            assert t_best <= mean_read_time_cycles(
                law(other), 7.0, other, 1.0
            ) + 1e-12

    def test_alpha_bounds(self):
        with pytest.raises(AnalysisError):
            analytic_optimal_block_words(
                MissPowerLaw(0.2, 1.2), 6.0, 1.0
            )

    def test_matches_simulated_optimum_in_order(self):
        """Cross-check: fit the law to a simulated miss curve and
        compare the closed-form optimum with the parabola-fit optimum —
        they should land within a factor of ~2 (one octave)."""
        from repro.core.blocksize import optimal_block_size_words
        from repro.core.sweep import run_blocksize_sweep
        from repro.trace.suite import build_suite

        traces = build_suite(length=30_000, names=["mu3"])
        curves = run_blocksize_sweep(
            traces, block_sizes_words=[2, 4, 8, 16, 32],
            latencies_ns=[260.0], transfer_rates=[1.0],
        )
        ((key, curve),) = curves.items()
        read_miss = curve.load_miss_ratio + curve.ifetch_miss_ratio
        falling = int(np.argmin(read_miss)) + 1
        law = fit_miss_power_law(
            curve.block_sizes_words[:falling], read_miss[:falling]
        )
        analytic = analytic_optimal_block_words(law, key[0] + 1, key[1])
        simulated = optimal_block_size_words(curve)
        assert 0.5 < analytic / simulated < 2.5


class TestCyclesPerReferenceModel:
    def test_linear_in_penalty(self):
        lo = cycles_per_reference_model(0.1, 0.8, 8.0)
        hi = cycles_per_reference_model(0.1, 0.8, 14.0)
        assert hi - lo == pytest.approx(0.1 * 0.8 * 6.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            cycles_per_reference_model(0.1, 1.5, 8.0)


class TestCrossover:
    def test_tie_point(self):
        law = MissPowerLaw(coefficient=0.4, alpha=0.5)
        product = crossover_speed_product(law, 4.0, 8.0)
        t4 = law(4.0) * (product + 4.0)
        t8 = law(8.0) * (product + 8.0)
        assert t4 == pytest.approx(t8)

    def test_validation(self):
        law = MissPowerLaw(coefficient=0.4, alpha=0.5)
        with pytest.raises(AnalysisError):
            crossover_speed_product(law, 4.0, 4.0)
