"""Associativity break-even analysis on constructed grids."""

import pytest

from repro.core.associativity import (
    breakeven_map,
    breakeven_ns,
    smooth_column,
    summarize_breakeven,
)
from repro.errors import AnalysisError
from tests.core.test_metrics import make_grid

SIZES = (4096, 8192, 16384)
CYCLES = (20.0, 40.0, 60.0, 80.0)


def dm_grid():
    # exec = t * (1 + overhead); direct mapped overheads per size.
    return make_grid(
        sizes=SIZES, cycles=CYCLES,
        exec_fn=lambda i, j: CYCLES[j] * (1.0 + [0.5, 0.25, 0.1][i]),
    )


def assoc_grid(gain=0.1):
    # The associative machine is `gain` fraction faster at equal clock.
    return make_grid(
        sizes=SIZES, cycles=CYCLES,
        exec_fn=lambda i, j: CYCLES[j] * (1.0 + [0.5, 0.25, 0.1][i]) * (1 - gain),
    )


class TestBreakeven:
    def test_analytic_value(self):
        # DM exec = 1.5 t; SA exec = 1.35 t.  A direct-mapped machine
        # matches the SA design's 40ns performance at t_dm = 36ns, so
        # the SA implementation may cost up to 40 - 36 = 4ns of cycle
        # time and still break even.
        value = breakeven_ns(dm_grid(), assoc_grid(0.1), 0, 1)
        assert value == pytest.approx(4.0)

    def test_positive_when_dm_needs_faster_clock_than_range(self):
        # With a large gain, the DM machine must clock *much* faster to
        # match, eventually leaving the simulated range -> None.
        value = breakeven_ns(dm_grid(), assoc_grid(0.8), 0, 0)
        assert value is None

    def test_slack_grows_with_gain(self):
        small = breakeven_ns(dm_grid(), assoc_grid(0.05), 1, 2)
        large = breakeven_ns(dm_grid(), assoc_grid(0.15), 1, 2)
        assert large > small  # more miss-ratio gain -> more slack

    def test_mismatched_axes_rejected(self):
        other = make_grid(sizes=(4096, 8192), cycles=CYCLES)
        with pytest.raises(AnalysisError):
            breakeven_ns(dm_grid(), other, 0, 0)

    def test_map_shape(self):
        bmap = breakeven_map(dm_grid(), assoc_grid(0.1))
        assert bmap.shape == (len(SIZES), len(CYCLES))


class TestSignConvention:
    def test_associative_machine_slower_gives_negative_slack(self):
        """When associativity *hurts*, the break-even is negative —
        there is no cycle-time budget for the selection hardware."""
        worse = make_grid(
            sizes=SIZES, cycles=CYCLES,
            exec_fn=lambda i, j: CYCLES[j] * (1.0 + [0.5, 0.25, 0.1][i]) * 1.1,
        )
        value = breakeven_ns(dm_grid(), worse, 0, 1)
        assert value < 0


class TestSmoothColumn:
    def test_interpolates_named_column(self):
        grid = make_grid(
            sizes=SIZES, cycles=(40.0, 56.0, 60.0),
            exec_fn=lambda i, j: [100.0, 500.0, 120.0][j],
        )
        smoothed = smooth_column(grid, 56.0)
        expected = 100.0 + (56.0 - 40.0) / 20.0 * 20.0
        assert smoothed.execution_ns[0, 1] == pytest.approx(expected)
        # Original untouched.
        assert grid.execution_ns[0, 1] == 500.0

    def test_absent_column_is_noop(self):
        grid = dm_grid()
        assert smooth_column(grid, 56.0) is grid


class TestSummary:
    def test_summary_fields(self):
        summary = summarize_breakeven(dm_grid(), assoc_grid(0.1), assoc=2)
        assert summary.assoc == 2
        assert summary.max_at_total_size in SIZES
        assert isinstance(summary.worthwhile_vs_as_mux, bool)
