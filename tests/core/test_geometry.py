"""Cache geometry: derived constants and address decomposition."""

import pytest

from repro.core.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.units import KB


class TestDerived:
    def test_paper_base_cache(self):
        # "The split I and D caches are 64 kilobytes each, organized as
        # 4K blocks of four words, direct mapped."
        geometry = CacheGeometry(size_bytes=64 * KB, block_words=4, assoc=1)
        assert geometry.n_blocks == 4096
        assert geometry.n_sets == 4096
        assert geometry.block_bytes == 16
        assert geometry.fetch_words == 4

    def test_associative_sets(self):
        geometry = CacheGeometry(size_bytes=8 * KB, block_words=4, assoc=4)
        assert geometry.n_sets == 128

    def test_bits(self):
        geometry = CacheGeometry(size_bytes=8 * KB, block_words=8, assoc=2)
        assert geometry.offset_bits == 3
        assert geometry.index_bits == 7


class TestSplitAddress:
    def test_decomposition(self):
        geometry = CacheGeometry(size_bytes=4 * KB, block_words=4, assoc=1)
        # 4KB = 256 blocks = 256 sets; offset 2 bits, index 8 bits.
        tag, index, offset = geometry.split_address(0b1011_00001111_10)
        assert offset == 0b10
        assert index == 0b00001111
        assert tag == 0b1011

    def test_block_address_strips_offset(self):
        geometry = CacheGeometry(size_bytes=4 * KB, block_words=4, assoc=1)
        assert geometry.block_address(17) == 4

    def test_round_trip(self):
        geometry = CacheGeometry(size_bytes=8 * KB, block_words=8, assoc=2)
        addr = 0x12345
        tag, index, offset = geometry.split_address(addr)
        rebuilt = ((tag << geometry.index_bits | index)
                   << geometry.offset_bits) | offset
        assert rebuilt == addr


class TestValidation:
    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=4 * KB, block_words=3)

    def test_rejects_size_not_multiple(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=4 * KB + 4, block_words=4)

    def test_rejects_fetch_larger_than_block(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=4 * KB, block_words=4, fetch_words=8)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=4 * KB, assoc=0)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=48 * KB, block_words=4, assoc=1)

    def test_sub_block_fetch_allowed(self):
        geometry = CacheGeometry(size_bytes=4 * KB, block_words=8, fetch_words=4)
        assert geometry.fetch_words == 4


class TestVariants:
    def test_with_assoc_keeps_capacity(self):
        base = CacheGeometry(size_bytes=16 * KB, block_words=4, assoc=1)
        two_way = base.with_assoc(2)
        assert two_way.size_bytes == base.size_bytes
        assert two_way.n_sets == base.n_sets // 2

    def test_with_block_words_resets_fetch(self):
        base = CacheGeometry(size_bytes=16 * KB, block_words=8, fetch_words=4)
        changed = base.with_block_words(16)
        assert changed.fetch_words == 16

    def test_describe(self):
        text = CacheGeometry(size_bytes=64 * KB, block_words=4).describe()
        assert "64KB" in text and "1-way" in text and "4096 sets" in text
