"""Table 3 analysis: penalty mapping and sensitivity slopes."""

import pytest

from repro.core.penalty import (
    cycles_per_reference_slope,
    penalty_table,
    read_penalty_cycles,
)
from repro.core.timing import MemoryTiming
from repro.errors import AnalysisError
from tests.core.test_metrics import make_grid

import numpy as np


class TestReadPenalty:
    def test_matches_table2(self):
        memory = MemoryTiming()
        assert read_penalty_cycles(memory, 4, 20.0) == 14
        assert read_penalty_cycles(memory, 4, 40.0) == 10
        assert read_penalty_cycles(memory, 4, 60.0) == 8


class TestPenaltyTable:
    def _grid(self):
        sizes = (4096, 8192, 16384)
        cycles = (20.0, 40.0, 60.0, 80.0)
        grid = make_grid(
            sizes=sizes, cycles=cycles,
            exec_fn=lambda i, j: cycles[j] * (1.0 + 8.0 / 2 ** i),
        )
        # Give cycles/reference a penalty-dependent structure: small
        # caches cost more cycles at faster clocks (larger penalty).
        penalty = np.array(
            [read_penalty_cycles(MemoryTiming(), 4, t) for t in cycles]
        )
        miss = np.array([0.2, 0.1, 0.05])
        grid.cycles_per_reference = 1.0 + np.outer(miss, penalty)
        return grid

    def test_rows_grouped_by_penalty(self):
        cells = penalty_table(self._grid(), MemoryTiming())
        penalties = {c.read_penalty_cycles for c in cells}
        # 20ns->14, 40ns->10, 60ns->8, 80ns->8: three groups.
        assert penalties == {14, 10, 8}

    def test_cycles_per_reference_increases_with_penalty(self):
        cells = penalty_table(self._grid(), MemoryTiming())
        per_size = {}
        for c in cells:
            per_size.setdefault(c.total_size_bytes, []).append(
                (c.read_penalty_cycles, c.cycles_per_reference)
            )
        for rows in per_size.values():
            rows.sort()
            values = [v for _p, v in rows]
            assert values == sorted(values)

    def test_slope_larger_for_smaller_caches(self):
        cells = penalty_table(self._grid(), MemoryTiming())
        small = cycles_per_reference_slope(cells, 4096)
        large = cycles_per_reference_slope(cells, 16384)
        assert small > large
        assert small == pytest.approx(0.2, rel=0.05)

    def test_size_selection(self):
        cells = penalty_table(self._grid(), MemoryTiming(), sizes=[8192])
        assert {c.total_size_bytes for c in cells} == {8192}

    def test_slope_needs_two_penalties(self):
        cells = [c for c in penalty_table(self._grid(), MemoryTiming())
                 if c.read_penalty_cycles == 10]
        with pytest.raises(AnalysisError):
            cycles_per_reference_slope(cells, 4096)
