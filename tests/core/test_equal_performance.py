"""Equal-performance analysis on grids with known analytic structure."""

import numpy as np
import pytest

from repro.core.equal_performance import (
    classify_regions,
    cycle_time_for_level,
    iso_performance_lines,
    preferred_size_range,
    slope_map,
    slope_ns_per_doubling,
)
from tests.core.test_metrics import make_grid


def linear_grid(sizes=(4096, 8192, 16384), cycles=(20.0, 40.0, 60.0, 80.0)):
    """exec = cycle * (1 + overhead(size)) with halving overheads.

    With overhead(size) = 8 / 2**i, the constant-performance slope is
    analytically computable, which pins the interpolation code.
    """

    def exec_fn(i, j):
        return cycles[j] * (1.0 + 8.0 / (2 ** i))

    return make_grid(sizes=sizes, cycles=cycles, exec_fn=exec_fn)


class TestCycleTimeForLevel:
    def test_exact_grid_point(self):
        grid = linear_grid()
        level = grid.execution_ns[0, 1]  # size 0 at 40ns
        assert cycle_time_for_level(grid, 0, level) == pytest.approx(40.0)

    def test_interpolates_between_points(self):
        grid = linear_grid()
        level = (grid.execution_ns[0, 0] + grid.execution_ns[0, 1]) / 2
        assert cycle_time_for_level(grid, 0, level) == pytest.approx(30.0)

    def test_out_of_range_returns_none(self):
        grid = linear_grid()
        assert cycle_time_for_level(grid, 0, 1.0) is None
        assert cycle_time_for_level(grid, 0, 1e9) is None

    def test_non_monotone_column_uses_envelope(self):
        # A quantization bump must not break the inversion.
        grid = make_grid(
            sizes=(4096, 8192), cycles=(20.0, 40.0, 60.0),
            exec_fn=lambda i, j: [100.0, 90.0, 120.0][j] * (i + 1),
        )
        value = cycle_time_for_level(grid, 0, 110.0)
        assert value is not None
        assert 40.0 <= value <= 60.0


class TestSlopes:
    def test_analytic_slope(self):
        # exec_small(t) = 9t; exec_big(t) = 5t.  At (size0, t): the big
        # cache matches at t' = 9t/5, slope = t(9/5 - 1) = 0.8 t.
        grid = linear_grid()
        slope = slope_ns_per_doubling(grid, 0, 1)  # t = 40
        assert slope == pytest.approx(32.0, rel=0.02)

    def test_last_size_has_no_slope(self):
        grid = linear_grid()
        assert slope_ns_per_doubling(grid, 2, 0) is None

    def test_slope_decreases_with_size(self):
        grid = linear_grid()
        s0 = slope_ns_per_doubling(grid, 0, 1)
        s1 = slope_ns_per_doubling(grid, 1, 1)
        assert s1 < s0

    def test_slope_map_shape_and_nan_tail(self):
        grid = linear_grid()
        slopes = slope_map(grid)
        assert slopes.shape == grid.execution_ns.shape
        assert np.isnan(slopes[-1, :]).all()


class TestRegions:
    def test_classification_buckets(self):
        grid = linear_grid()
        regions = classify_regions(grid, boundaries=(2.5, 5.0, 7.5, 10.0))
        # Size 0 slopes are far above 10ns -> bucket 4.
        valid = regions[0][regions[0] >= 0]
        assert (valid == 4).all()

    def test_boundaries_must_be_sorted(self):
        grid = linear_grid()
        with pytest.raises(Exception):
            classify_regions(grid, boundaries=(5.0, 2.5))


class TestIsoLines:
    def test_levels_spaced_as_requested(self):
        grid = linear_grid()
        lines = iso_performance_lines(grid, base_level=1.1, level_step=0.3,
                                      n_levels=3)
        assert [l.level for l in lines] == pytest.approx([1.1, 1.4, 1.7])

    def test_points_have_rising_cycle_times_with_size(self):
        # Bigger caches afford slower clocks at equal performance.
        grid = linear_grid()
        for line in iso_performance_lines(grid, n_levels=5):
            cycles = [c for _s, c in line.points]
            assert cycles == sorted(cycles)


class TestPreferredRange:
    def test_grow_and_stop(self):
        grid = linear_grid()
        grow_until, stop_at = preferred_size_range(
            grid, low_slope_ns=10.0, high_slope_ns=15.0, cycle_index=1
        )
        # Slopes at 40ns: 32 (size0), ~17.8 (size1): both > 15 -> grow
        # through the last size; none below 10 -> no stop.
        assert grow_until == 16384
        assert stop_at is None
