"""Timed write buffer: drain scheduling, stalls, matching."""

import pytest

from repro.cache.writebuffer import TimedWriteBuffer
from repro.errors import ConfigurationError


class FakeMemory:
    """Minimal downstream level: fixed write service, records starts."""

    def __init__(self, handoff_cycles=5, busy_tail=4):
        self.free_at = 0
        self.handoff_cycles = handoff_cycles
        self.busy_tail = busy_tail
        self.writes = []

    def write_block(self, pid, addr, words, now):
        start = max(now, self.free_at)
        handoff = start + self.handoff_cycles
        self.free_at = handoff + self.busy_tail
        self.writes.append((pid, addr, words, start))
        return handoff


class TestPush:
    def test_push_is_free_when_not_full(self):
        wb = TimedWriteBuffer(4, FakeMemory())
        assert wb.push(1, 0, 4, now=10) == 10
        assert len(wb) == 1

    def test_full_buffer_stalls_until_slot_frees(self):
        mem = FakeMemory()
        wb = TimedWriteBuffer(2, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 16, 4, now=0)
        # Third push at cycle 0: memory idle but drains start only
        # strictly before `now`; a forced drain begins at 0, hands off
        # at 5, so the CPU resumes at 5.
        release = wb.push(1, 32, 4, now=0)
        assert release == 5
        assert wb.full_stalls == 1

    def test_rejects_zero_depth(self):
        with pytest.raises(ConfigurationError):
            TimedWriteBuffer(0, FakeMemory())


class TestBackgroundDrain:
    def test_drains_entries_that_could_start_before_now(self):
        mem = FakeMemory()
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.background_drain(10)
        assert len(wb) == 0
        assert mem.writes[0][3] == 0  # started as soon as idle

    def test_tie_gives_priority_to_reads(self):
        mem = FakeMemory()
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=7)
        wb.background_drain(7)  # start would be 7, not strictly < 7
        assert len(wb) == 1

    def test_respects_downstream_busy(self):
        mem = FakeMemory()
        mem.free_at = 100
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.background_drain(50)
        assert len(wb) == 1  # cannot start before 100

    def test_fifo_order(self):
        mem = FakeMemory()
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 99, 4, now=0)
        wb.flush(0)
        assert [w[1] for w in mem.writes] == [0, 99]


class TestReadMatch:
    def test_no_match_returns_now(self):
        wb = TimedWriteBuffer(4, FakeMemory())
        wb.push(1, 0, 4, now=0)
        assert wb.resolve_read_match(1, 64, 4, now=3) == 3
        assert wb.match_stalls == 0

    def test_match_drains_through_entry(self):
        mem = FakeMemory()
        mem.free_at = 20  # keep entries from draining early
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 64, 4, now=0)
        release = wb.resolve_read_match(1, 64, 4, now=5)
        # Both entries drain (FIFO): first at 20..25, second at 29..34.
        assert release == 34
        assert wb.match_stalls == 1
        assert len(wb) == 0

    def test_overlap_detection_partial_ranges(self):
        mem = FakeMemory()
        mem.free_at = 50
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 10, 4, now=0)  # words [10, 14)
        assert wb.resolve_read_match(1, 12, 4, now=1) > 1
        wb2 = TimedWriteBuffer(4, mem)
        wb2.push(1, 10, 4, now=0)
        assert wb2.resolve_read_match(1, 14, 4, now=1) == 1  # adjacent, no overlap

    def test_pid_must_match(self):
        mem = FakeMemory()
        mem.free_at = 50
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        assert wb.resolve_read_match(2, 0, 4, now=1) == 1


class TestMaxOccupancy:
    def test_high_water_survives_drains(self):
        mem = FakeMemory()
        mem.free_at = 100  # hold entries in the buffer
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 16, 4, now=0)
        wb.push(1, 32, 4, now=0)
        assert wb.max_occupancy == 3
        mem.free_at = 0
        wb.flush(200)
        assert len(wb) == 0
        assert wb.max_occupancy == 3  # high-water, not current depth

    def test_never_exceeds_depth(self):
        mem = FakeMemory()
        mem.free_at = 1000
        wb = TimedWriteBuffer(2, mem)
        for k in range(5):
            wb.push(1, 16 * k, 4, now=0)
        assert wb.max_occupancy == 2
        assert wb.pushes == 5

    def test_unused_buffer_reports_zero(self):
        wb = TimedWriteBuffer(4, FakeMemory())
        assert wb.max_occupancy == 0

    def test_counts_peak_not_last(self):
        mem = FakeMemory()
        mem.free_at = 30
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 16, 4, now=0)
        # Drain both (forced via read match on the second entry), then
        # push one more: occupancy is 1 but the peak stays 2.
        wb.resolve_read_match(1, 16, 4, now=40)
        wb.push(1, 32, 4, now=200)
        assert len(wb) == 1
        assert wb.max_occupancy == 2


class TestFlush:
    def test_flush_empties_and_returns_last_handoff(self):
        mem = FakeMemory()
        wb = TimedWriteBuffer(4, mem)
        wb.push(1, 0, 4, now=0)
        wb.push(1, 64, 4, now=0)
        release = wb.flush(0)
        assert len(wb) == 0
        assert release == 14  # 0..5, then 9..14
