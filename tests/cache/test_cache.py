"""Functional cache: hits, misses, victims, dirty masks, policies."""

import pytest

from repro.cache.cache import Cache, block_key, key_block_addr, key_pid
from repro.core.geometry import CacheGeometry
from repro.core.policy import (
    CachePolicy,
    ReplacementKind,
    WriteMissPolicy,
    WritePolicy,
)
from repro.errors import SimulationError
from repro.units import KB


def make_cache(size_kb=4, block_words=4, assoc=1, fetch_words=0, **policy_kw):
    geometry = CacheGeometry(
        size_bytes=size_kb * KB, block_words=block_words, assoc=assoc,
        fetch_words=fetch_words,
    )
    policy = CachePolicy(replacement=ReplacementKind.LRU, **policy_kw)
    return Cache(geometry, policy)


class TestBlockKey:
    def test_round_trip(self):
        key = block_key(7, 0x12345)
        assert key_pid(key) == 7
        assert key_block_addr(key) == 0x12345


class TestReadPath:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access_read(1, 100).hit
        assert cache.access_read(1, 100).hit

    def test_whole_block_fetched(self):
        cache = make_cache(block_words=4)
        result = cache.access_read(1, 100)
        assert result.fetched_words == 4
        # Every word of the block now hits.
        base = (100 // 4) * 4
        for offset in range(4):
            assert cache.probe(1, base + offset)

    def test_pid_is_part_of_the_tag(self):
        # Virtual caches: same address, different process -> miss.
        cache = make_cache()
        cache.access_read(1, 100)
        assert not cache.access_read(2, 100).hit

    def test_conflict_eviction_direct_mapped(self):
        cache = make_cache(size_kb=4, block_words=4, assoc=1)
        words = 4 * KB // 4  # cache capacity in words
        cache.access_read(1, 0)
        cache.access_read(1, words)  # same index, different tag
        assert not cache.access_read(1, 0).hit

    def test_clean_victim_not_reported(self):
        cache = make_cache(size_kb=4, assoc=1)
        words = 4 * KB // 4
        cache.access_read(1, 0)
        result = cache.access_read(1, words)
        assert result.victim_key is None

    def test_two_way_avoids_conflict(self):
        cache = make_cache(size_kb=4, assoc=2)
        words = 2 * KB // 4  # way size in words
        cache.access_read(1, 0)
        cache.access_read(1, words)
        assert cache.access_read(1, 0).hit
        assert cache.access_read(1, words).hit


class TestWritePath:
    def test_write_miss_bypasses_no_allocate(self):
        cache = make_cache()
        result = cache.access_write(1, 100)
        assert not result.hit
        assert result.bypass_write
        # The block was NOT allocated.
        assert not cache.probe(1, 100)

    def test_write_hit_sets_dirty_and_victim_reports_dirty_words(self):
        cache = make_cache(size_kb=4, assoc=1)
        words = 4 * KB // 4
        cache.access_read(1, 0)
        cache.access_write(1, 1)
        cache.access_write(1, 2)
        result = cache.access_read(1, words)  # evicts block 0
        assert result.victim_key == block_key(1, 0)
        assert result.victim_dirty_words == 2

    def test_write_allocate_policy(self):
        cache = make_cache(write_miss=WriteMissPolicy.FETCH_ON_WRITE)
        result = cache.access_write(1, 100)
        assert not result.hit and not result.bypass_write
        assert cache.probe(1, 100)

    def test_write_through_never_dirty(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access_read(1, 0)
        result = cache.access_write(1, 0)
        assert result.hit and result.bypass_write
        flushed = cache.flush()
        assert flushed == []


class TestSubBlockFetch:
    def test_partial_fetch_and_sub_block_miss(self):
        cache = make_cache(block_words=8, fetch_words=4)
        result = cache.access_read(1, 0)
        assert result.fetched_words == 4
        assert cache.probe(1, 3)
        assert not cache.probe(1, 4)  # other half of the block invalid
        # Touching the other half is a sub-block miss, no eviction.
        second = cache.access_read(1, 4)
        assert not second.hit
        assert second.victim_key is None
        assert cache.probe(1, 7)


class TestWriteWords:
    def test_absorb_into_present_block(self):
        cache = make_cache(block_words=8)
        cache.access_read(1, 0)
        result = cache.write_words(1, 0, 4)
        assert result.hit
        flushed = cache.flush()
        assert flushed == [(block_key(1, 0), 4)]

    def test_allocate_without_fetch_keeps_rest_invalid(self):
        cache = make_cache(
            block_words=8, write_miss=WriteMissPolicy.FETCH_ON_WRITE
        )
        result = cache.write_words(1, 0, 4)
        assert not result.hit
        assert cache.probe(1, 0)
        assert not cache.probe(1, 6)

    def test_no_allocate_bypasses(self):
        cache = make_cache(block_words=8)
        result = cache.write_words(1, 0, 4)
        assert result.bypass_write

    def test_rejects_block_crossing(self):
        cache = make_cache(block_words=4)
        with pytest.raises(SimulationError):
            cache.write_words(1, 2, 4)


class TestMaintenance:
    def test_flush_clears_everything(self):
        cache = make_cache()
        cache.access_read(1, 0)
        cache.access_write(1, 0)
        flushed = cache.flush()
        assert flushed == [(block_key(1, 0), 1)]
        assert not cache.probe(1, 0)

    def test_invariants_hold_after_mixed_traffic(self):
        cache = make_cache(size_kb=4, assoc=2)
        for i in range(2000):
            addr = (i * 37) % 4096
            if i % 3:
                cache.access_read(1 + i % 2, addr)
            else:
                cache.access_write(1 + i % 2, addr)
        cache.check_invariants()

    def test_resident_keys_lists_valid_blocks(self):
        cache = make_cache()
        cache.access_read(1, 0)
        cache.access_read(2, 64)
        keys = set(cache.resident_keys())
        assert block_key(1, 0) in keys
        assert block_key(2, 16) in keys
