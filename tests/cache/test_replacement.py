"""Replacement policies: order-list semantics."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.policy import ReplacementKind
from repro.errors import ConfigurationError


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        order = []
        for way in (0, 1, 2):
            policy.on_fill(order, way)
        policy.on_hit(order, 0)  # 0 becomes most recent
        assert policy.victim(order, 3) == 1
        assert order == [2, 0]

    def test_hit_moves_to_back(self):
        policy = LRUPolicy()
        order = [0, 1, 2]
        policy.on_hit(order, 1)
        assert order == [0, 2, 1]


class TestFIFO:
    def test_hit_does_not_touch_order(self):
        policy = FIFOPolicy()
        order = [0, 1, 2]
        policy.on_hit(order, 0)
        assert order == [0, 1, 2]

    def test_victim_is_oldest(self):
        policy = FIFOPolicy()
        order = [2, 0, 1]
        assert policy.victim(order, 3) == 2


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(seed=42)
        b = RandomPolicy(seed=42)
        order_a = [0, 1, 2, 3]
        order_b = [0, 1, 2, 3]
        victims_a = [a.victim(order_a, 4), a.victim(order_a, 4)]
        victims_b = [b.victim(order_b, 4), b.victim(order_b, 4)]
        assert victims_a == victims_b

    def test_victim_removed_from_order(self):
        policy = RandomPolicy(seed=1)
        order = [0, 1, 2]
        victim = policy.victim(order, 3)
        assert victim not in order
        assert len(order) == 2


class TestRandomSeedValidation:
    @pytest.mark.parametrize("bad_seed", [None, 1.5, "42", True])
    def test_non_integer_seed_is_rejected(self, bad_seed):
        with pytest.raises(ConfigurationError):
            RandomPolicy(seed=bad_seed)

    def test_factory_maps_none_to_fixed_default(self):
        # make_policy(RANDOM) must stay usable without a seed — it pins
        # seed 0 rather than letting None reach random.Random(None).
        a = make_policy(ReplacementKind.RANDOM)
        b = make_policy(ReplacementKind.RANDOM, seed=0)
        order_a, order_b = [0, 1, 2, 3], [0, 1, 2, 3]
        assert [a.victim(order_a, 4) for _ in range(3)] == \
            [b.victim(order_b, 4) for _ in range(3)]


class TestEngineEvictionDeterminism:
    """Two simulators with the same seed must evict identically —
    the invariant REPRO001/REPRO002 and the seeded RandomPolicy protect,
    and the one byte-identical campaign re-simulation depends on."""

    @staticmethod
    def _run(seed):
        from repro.sim.config import baseline_config
        from repro.sim.engine import simulate
        from repro.trace.suite import build_trace

        config = baseline_config(
            cache_size_bytes=2048, assoc=4,
            replacement=ReplacementKind.RANDOM,
        )
        trace = build_trace("mu3", length=3000)
        evictions = []
        original = RandomPolicy.victim

        def recording(self, order, assoc):
            victim = original(self, order, assoc)
            evictions.append(victim)
            return victim

        RandomPolicy.victim = recording
        try:
            stats = simulate(config, trace, seed=seed)
        finally:
            RandomPolicy.victim = original
        return evictions, stats

    def test_same_seed_identical_evictions(self):
        evictions_a, stats_a = self._run(seed=7)
        evictions_b, stats_b = self._run(seed=7)
        assert evictions_a, "fixture must actually exercise eviction"
        assert evictions_a == evictions_b
        assert stats_a == stats_b

    def test_different_seed_diverges(self):
        evictions_a, _ = self._run(seed=7)
        evictions_b, _ = self._run(seed=8)
        assert evictions_a != evictions_b


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (ReplacementKind.LRU, LRUPolicy),
        (ReplacementKind.FIFO, FIFOPolicy),
        (ReplacementKind.RANDOM, RandomPolicy),
    ])
    def test_make_policy(self, kind, cls):
        assert isinstance(make_policy(kind), cls)
