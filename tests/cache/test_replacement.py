"""Replacement policies: order-list semantics."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.policy import ReplacementKind


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        order = []
        for way in (0, 1, 2):
            policy.on_fill(order, way)
        policy.on_hit(order, 0)  # 0 becomes most recent
        assert policy.victim(order, 3) == 1
        assert order == [2, 0]

    def test_hit_moves_to_back(self):
        policy = LRUPolicy()
        order = [0, 1, 2]
        policy.on_hit(order, 1)
        assert order == [0, 2, 1]


class TestFIFO:
    def test_hit_does_not_touch_order(self):
        policy = FIFOPolicy()
        order = [0, 1, 2]
        policy.on_hit(order, 0)
        assert order == [0, 1, 2]

    def test_victim_is_oldest(self):
        policy = FIFOPolicy()
        order = [2, 0, 1]
        assert policy.victim(order, 3) == 2


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(seed=42)
        b = RandomPolicy(seed=42)
        order_a = [0, 1, 2, 3]
        order_b = [0, 1, 2, 3]
        victims_a = [a.victim(order_a, 4), a.victim(order_a, 4)]
        victims_b = [b.victim(order_b, 4), b.victim(order_b, 4)]
        assert victims_a == victims_b

    def test_victim_removed_from_order(self):
        policy = RandomPolicy(seed=1)
        order = [0, 1, 2]
        victim = policy.victim(order, 3)
        assert victim not in order
        assert len(order) == 2


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (ReplacementKind.LRU, LRUPolicy),
        (ReplacementKind.FIFO, FIFOPolicy),
        (ReplacementKind.RANDOM, RandomPolicy),
    ])
    def test_make_policy(self, kind, cls):
        assert isinstance(make_policy(kind), cls)
