"""Couplet pairing: the paper's simultaneous-issue CPU model."""


from repro.cpu.processor import NO_REF, pair_couplets, sequentialize
from repro.trace.record import RefKind, Trace

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def make_trace(kinds, warm=0):
    addrs = list(range(100, 100 + len(kinds)))
    return Trace(kinds, addrs, [1] * len(kinds), warm_boundary=warm)


class TestPairing:
    def test_ifetch_followed_by_data_pairs(self):
        cs = pair_couplets(make_trace([I, L, I, S]))
        assert len(cs) == 2
        assert cs.i_addr == [100, 102]
        assert cs.d_kind == [L, S]
        assert cs.d_addr == [101, 103]

    def test_back_to_back_ifetches_stay_single(self):
        cs = pair_couplets(make_trace([I, I, I]))
        assert len(cs) == 3
        assert cs.d_kind == [NO_REF] * 3

    def test_leading_data_forms_degenerate_couplet(self):
        cs = pair_couplets(make_trace([L, I, S]))
        assert len(cs) == 2
        assert cs.i_addr[0] == NO_REF
        assert cs.d_addr[0] == 100

    def test_no_reordering(self):
        # Data never jumps ahead of a later ifetch.
        cs = pair_couplets(make_trace([I, I, L]))
        assert cs.i_addr == [100, 101]
        assert cs.d_addr == [NO_REF, 102]

    def test_ref_count_preserved(self):
        kinds = [I, L, I, I, S, L, I, S]
        cs = pair_couplets(make_trace(kinds))
        refs = sum(a != NO_REF for a in cs.i_addr) + sum(
            k != NO_REF for k in cs.d_kind
        )
        assert refs == len(kinds)


class TestWarmBoundary:
    def test_warm_couplet_at_reference_boundary(self):
        cs = pair_couplets(make_trace([I, L, I, S], warm=2))
        assert cs.warm_couplet == 1

    def test_warm_boundary_inside_couplet_rounds_up(self):
        # Boundary at ref 1 (the data half of couplet 0): the first
        # couplet starting at or beyond the boundary is couplet 1.
        cs = pair_couplets(make_trace([I, L, I, S], warm=1))
        assert cs.warm_couplet == 1

    def test_zero_warm_measures_everything(self):
        cs = pair_couplets(make_trace([I, L], warm=0))
        assert cs.warm_couplet == 0
        assert cs.n_warm_refs == 2

    def test_n_warm_refs_counts_past_boundary(self):
        cs = pair_couplets(make_trace([I, L, I, S], warm=2))
        assert cs.n_warm_refs == 2


class TestSequentialize:
    def test_one_ref_per_couplet(self):
        cs = sequentialize(make_trace([I, L, S]))
        assert len(cs) == 3
        assert cs.i_addr[0] == 100
        assert cs.d_kind[0] == NO_REF
        assert cs.d_addr[1] == 101
        assert cs.d_kind[2] == S

    def test_warm_couplet_equals_warm_boundary(self):
        cs = sequentialize(make_trace([I, L, S, I], warm=2))
        assert cs.warm_couplet == 2
