"""Shared fixtures for the test suite.

Traces are deliberately small: the functional behaviours under test
(hit/miss classification, timing semantics, aggregation) do not depend
on trace length, and the suite must stay fast.  Shape-sensitive checks
(integration tests) use somewhat longer traces and loose thresholds.
"""

from __future__ import annotations

import pytest

from repro.sim.config import baseline_config
from repro.trace.record import RefKind, Trace
from repro.trace.suite import build_trace
from repro.units import KB


@pytest.fixture(scope="session")
def mu3_small() -> Trace:
    """A small VAX-family trace (multiprogrammed, fixed warm boundary)."""
    return build_trace("mu3", length=20_000, seed=3)


@pytest.fixture(scope="session")
def rd2n4_small() -> Trace:
    """A small RISC-family trace (warm prefix + body)."""
    return build_trace("rd2n4", length=20_000, seed=3)


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """A hand-rolled trace exercising all three reference kinds."""
    kinds, addrs, pids = [], [], []
    for i in range(400):
        kinds.append(int(RefKind.IFETCH))
        addrs.append(i % 64)
        pids.append(1 + (i % 2))
        if i % 3 == 0:
            kinds.append(int(RefKind.LOAD) if i % 2 else int(RefKind.STORE))
            addrs.append(1024 + (i * 7) % 256)
            pids.append(1 + (i % 2))
    return Trace(kinds, addrs, pids, name="tiny", warm_boundary=100)


@pytest.fixture()
def small_config():
    """The base system scaled down to an 8 KB pair."""
    return baseline_config(cache_size_bytes=8 * KB)
