"""Additional property-based tests: spec round trips, reuse distances,
timing monotonicities."""

from hypothesis import given, settings, strategies as st

from repro.analysis.reuse import reuse_profile
from repro.core.policy import ReplacementKind
from repro.core.timing import MemoryTiming
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.sim.specfiles import config_from_dict, config_to_dict
from repro.trace.record import RefKind, Trace
from repro.units import KB

FAST = settings(max_examples=25, deadline=None)
MEDIUM = settings(max_examples=10, deadline=None)

L = int(RefKind.LOAD)


# Random-but-valid configurations of the fastpath family.
config_strategy = st.builds(
    baseline_config,
    cache_size_bytes=st.sampled_from([2 * KB, 8 * KB, 64 * KB]),
    block_words=st.sampled_from([2, 4, 16]),
    assoc=st.sampled_from([1, 2, 4]),
    cycle_ns=st.sampled_from([20.0, 40.0, 56.0]),
    replacement=st.sampled_from(list(ReplacementKind)),
    write_buffer_depth=st.integers(1, 8),
    memory=st.builds(
        MemoryTiming,
        latency_ns=st.sampled_from([100.0, 180.0, 420.0]),
        transfer_rate=st.sampled_from([0.25, 1.0, 4.0]),
    ),
)


@FAST
@given(config=config_strategy)
def test_spec_round_trip_any_config(config):
    """Any constructible configuration survives spec serialization."""
    assert config_from_dict(config_to_dict(config)) == config


@MEDIUM
@given(
    addrs=st.lists(st.integers(0, 2047), min_size=8, max_size=300),
    latencies=st.permutations([100.0, 260.0, 420.0]),
)
def test_execution_time_monotone_in_memory_latency(addrs, latencies):
    """A slower memory can never make the machine faster."""
    trace = Trace([L] * len(addrs), addrs, [0] * len(addrs))
    config = baseline_config(cache_size_bytes=1 * KB)
    by_latency = {}
    for latency_ns in latencies:
        memory = MemoryTiming().with_latency_ns(latency_ns)
        by_latency[latency_ns] = fast_simulate(
            config.with_memory(memory), trace
        ).cycles
    assert by_latency[100.0] <= by_latency[260.0] <= by_latency[420.0]


@MEDIUM
@given(addrs=st.lists(st.integers(0, 1023), min_size=4, max_size=200))
def test_reuse_profile_conserves_references(addrs):
    """Cold + histogram counts must equal the reference count."""
    trace = Trace([L] * len(addrs), addrs, [0] * len(addrs))
    profile = reuse_profile(trace, block_words=4)
    assert profile.cold + sum(profile.histogram.values()) == len(addrs)
    # Cold count equals the number of distinct blocks.
    assert profile.cold == len({a >> 2 for a in addrs})


@MEDIUM
@given(addrs=st.lists(st.integers(0, 1023), min_size=4, max_size=200))
def test_reuse_curve_matches_infinite_cache_floor(addrs):
    """At capacity >= distinct blocks, only cold misses remain."""
    trace = Trace([L] * len(addrs), addrs, [0] * len(addrs))
    profile = reuse_profile(trace, block_words=4)
    distinct = len({a >> 2 for a in addrs})
    assert profile.miss_ratio_at(distinct + 1) * len(addrs) == \
        profile.cold
