"""Bus presets and temporal scaling."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.buses import (
    BUSES,
    PRIVATE_BUS,
    VME,
    bus_by_name,
    scaled_memory,
)


class TestPresets:
    def test_paper_positioning(self):
        # "The backplane has more than double the transfer rate of VME
        # or MULTIBUS II, and memory latency is roughly a half that of
        # commercially available boards for these busses."
        assert PRIVATE_BUS.transfer_rate > 2 * VME.transfer_rate
        assert PRIVATE_BUS.latency_ns <= 0.55 * VME.latency_ns

    def test_lookup(self):
        assert bus_by_name("VME") is VME
        assert bus_by_name("private") is PRIVATE_BUS

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            bus_by_name("futurebus")

    def test_all_presets_valid(self):
        for name, memory in BUSES.items():
            assert memory.transfer_rate > 0, name
            assert memory.latency_ns > 0, name


class TestScaledMemory:
    def test_scales_times_not_rate(self):
        scaled = scaled_memory(PRIVATE_BUS, 0.5)
        assert scaled.latency_ns == PRIVATE_BUS.latency_ns / 2
        assert scaled.recovery_ns == PRIVATE_BUS.recovery_ns / 2
        assert scaled.transfer_rate == PRIVATE_BUS.transfer_rate

    def test_even_scaling_preserves_cycle_counts(self):
        # Quantized cycle counts are invariant when clock and memory
        # scale together — the §6 invariance at the timing level.
        for cycle in (20.0, 40.0, 56.0):
            base = PRIVATE_BUS.read_cycles(4, cycle)
            scaled = scaled_memory(PRIVATE_BUS, 0.5).read_cycles(4, cycle / 2)
            assert base == scaled

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            scaled_memory(PRIVATE_BUS, 0.0)
