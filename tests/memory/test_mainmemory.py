"""Main-memory port timing: reads, writes, recovery, overlap."""

import pytest

from repro.core.timing import MemoryTiming
from repro.errors import ConfigurationError
from repro.memory.mainmemory import MainMemory


def make_memory(cycle_ns=40.0, **kw):
    return MainMemory(MemoryTiming(**kw), cycle_ns)


class TestReads:
    def test_base_read_is_ten_cycles_at_40ns(self):
        mem = make_memory()
        done, first = mem.read_block(1, 0, 4, now=0)
        assert done == 10  # 1 addr + 5 latency + 4 transfer
        assert first == 7  # first word after one transfer cycle

    def test_recovery_separates_operations(self):
        mem = make_memory()
        mem.read_block(1, 0, 4, now=0)        # done 10, free at 13
        done, _ = mem.read_block(1, 64, 4, now=10)
        assert done == 23  # starts at 13

    def test_idle_gap_larger_than_recovery(self):
        mem = make_memory()
        mem.read_block(1, 0, 4, now=0)
        done, _ = mem.read_block(1, 64, 4, now=100)
        assert done == 110

    def test_overlap_hidden_when_shorter_than_latency(self):
        # 4-word victim move (4 cycles) hides under the 6-cycle latency.
        mem = make_memory()
        done, _ = mem.read_block(1, 0, 4, now=0, overlap_cycles=4)
        assert done == 10

    def test_overlap_delays_when_longer_than_latency(self):
        # A 16-word victim on the 1-word path takes 16 cycles > 6.
        mem = make_memory()
        done, _ = mem.read_block(1, 0, 16, now=0, overlap_cycles=16)
        assert done == 0 + 16 + 16

    def test_counters(self):
        mem = make_memory()
        mem.read_block(1, 0, 4, now=0)
        mem.start_write(4, now=20)
        assert mem.reads == 1
        assert mem.writes == 1
        assert mem.busy_cycles > 0


class TestWrites:
    def test_handoff_then_internal_busy(self):
        mem = make_memory()
        handoff = mem.start_write(4, now=0)
        assert handoff == 5  # 1 addr + 4 transfer
        # Internal op 3 cycles + recovery 3: next op at 11.
        done, _ = mem.read_block(1, 0, 4, now=5)
        assert done == 11 + 10

    def test_write_block_protocol_alias(self):
        mem = make_memory()
        assert mem.write_block(1, 0, 4, now=0) == 5


class TestReset:
    def test_reset_clears_state(self):
        mem = make_memory()
        mem.read_block(1, 0, 4, now=0)
        mem.reset()
        assert mem.free_at == 0
        assert mem.reads == 0
        done, _ = mem.read_block(1, 0, 4, now=0)
        assert done == 10


class TestValidation:
    def test_rejects_nonpositive_cycle(self):
        with pytest.raises(ConfigurationError):
            MainMemory(MemoryTiming(), 0.0)
