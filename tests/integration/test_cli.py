"""CLI: argument parsing and end-to-end subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_ids_listed_in_help(self):
        parser = build_parser()
        assert parser is not None

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestSubcommands:
    def test_traces(self, capsys):
        assert main(["traces", "--length", "5000"]) == 0
        out = capsys.readouterr().out
        assert "mu3" in out and "rd2n7" in out

    def test_simulate_fastpath(self, capsys):
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "read miss ratio" in out

    def test_simulate_engine_matches_fastpath(self, capsys):
        args = ["simulate", "--trace", "mu3", "--length", "8000",
                "--size-kb", "4"]
        main(args)
        fast_out = capsys.readouterr().out
        main(args + ["--engine"])
        engine_out = capsys.readouterr().out
        assert fast_out.split("cycles:")[1] == engine_out.split("cycles:")[1]

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "MISMATCH" not in out

    def test_experiment_with_reduced_settings(self, capsys):
        assert main([
            "experiment", "fig3_1", "--length", "10000",
            "--traces", "mu3,rd2n4",
        ]) == 0
        out = capsys.readouterr().out
        assert "TotalL1" in out

    def test_din_export_then_simulate(self, capsys, tmp_path):
        path = str(tmp_path / "t.din")
        assert main([
            "din", path, "--export", "mu3", "--length", "6000",
        ]) == 0
        capsys.readouterr()
        assert main([
            "din", path, "--size-kb", "4", "--warm-boundary", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "read miss ratio" in out
