"""CLI: argument parsing and end-to-end subcommands."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.telemetry import REPORT_SCHEMA


class TestParser:
    def test_experiment_ids_listed_in_help(self):
        parser = build_parser()
        assert parser is not None

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestSubcommands:
    def test_traces(self, capsys):
        assert main(["traces", "--length", "5000"]) == 0
        out = capsys.readouterr().out
        assert "mu3" in out and "rd2n7" in out

    def test_simulate_fastpath(self, capsys):
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "read miss ratio" in out

    def test_simulate_engine_matches_fastpath(self, capsys):
        args = ["simulate", "--trace", "mu3", "--length", "8000",
                "--size-kb", "4"]
        main(args)
        fast_out = capsys.readouterr().out
        main(args + ["--engine"])
        engine_out = capsys.readouterr().out
        assert fast_out.split("cycles:")[1] == engine_out.split("cycles:")[1]

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "MISMATCH" not in out

    def test_experiment_with_reduced_settings(self, capsys):
        assert main([
            "experiment", "fig3_1", "--length", "10000",
            "--traces", "mu3,rd2n4",
        ]) == 0
        out = capsys.readouterr().out
        assert "TotalL1" in out

    def test_simulate_prints_warm_up_boundary(self, capsys):
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "warm-up:" in out
        assert "statistics snapshot at cycle" in out

    def test_din_export_then_simulate(self, capsys, tmp_path):
        path = str(tmp_path / "t.din")
        assert main([
            "din", path, "--export", "mu3", "--length", "6000",
        ]) == 0
        capsys.readouterr()
        assert main([
            "din", path, "--size-kb", "4", "--warm-boundary", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "read miss ratio" in out


class TestSimulateMetrics:
    ARGS = ["simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4"]

    def test_metrics_prints_attribution_and_host_line(self, capsys):
        assert main(self.ARGS + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "l1_service" in out
        assert "conservation:" in out and "ok" in out
        assert "refs/s" in out

    def test_metrics_out_writes_conserved_run_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(self.ARGS + ["--metrics-out", str(path)]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["conserved"] is True
        assert payload["schema"] == REPORT_SCHEMA
        assert sum(payload["buckets"].values()) == payload["total_cycles"]
        assert payload["refs_per_sec"] > 0

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(self.ARGS + ["--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "event trace written to" in out
        doc = json.loads(path.read_text())
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert slices
        assert {e["name"] for e in slices} <= {
            "l1_service", "translation", "wb_match_stall", "wb_full_stall",
            "mem_busy", "mem_recovery", "fetch_latency", "writeback_overlap",
            "fetch_transfer", "lower_fetch",
        }

    def test_engine_metrics_match_fastpath(self, capsys, tmp_path):
        fast_path = tmp_path / "fast.json"
        engine_path = tmp_path / "engine.json"
        assert main(self.ARGS + ["--metrics-out", str(fast_path)]) == 0
        assert main(
            self.ARGS + ["--engine", "--metrics-out", str(engine_path)]
        ) == 0
        capsys.readouterr()
        fast = json.loads(fast_path.read_text())
        engine = json.loads(engine_path.read_text())
        assert fast["buckets"] == engine["buckets"]
        assert fast["buckets_measured"] == engine["buckets_measured"]
        assert fast["cycles"] == engine["cycles"]


class TestCampaignMetrics:
    def _run(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        code = main([
            "campaign", "run", directory,
            "--traces", "mu3", "--length", "6000",
            "--sizes-kb", "4,16", "--cycles-ns", "40",
            "--metrics",
        ])
        capsys.readouterr()
        return directory, code

    def test_run_with_metrics_persists_reports(self, capsys, tmp_path):
        directory, code = self._run(tmp_path, capsys)
        assert code == 0
        metrics_dir = tmp_path / "camp" / "metrics"
        reports = sorted(
            p for p in metrics_dir.glob("*.json") if p.name != "summary.json"
        )
        assert len(reports) == 2
        for path in reports:
            assert json.loads(path.read_text())["conserved"] is True
        summary = json.loads((metrics_dir / "summary.json").read_text())
        assert summary["runs"] == 2
        assert summary["all_conserved"] is True

    def test_report_aggregates(self, capsys, tmp_path):
        directory, code = self._run(tmp_path, capsys)
        assert code == 0
        assert main(["campaign", "report", directory, "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert "cycle conservation: ok" in out
        assert "slowest runs:" in out

    def test_report_without_metrics_fails(self, capsys, tmp_path):
        directory = str(tmp_path / "bare")
        assert main([
            "campaign", "run", directory,
            "--traces", "mu3", "--length", "6000",
            "--sizes-kb", "4", "--cycles-ns", "40",
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", directory]) == 1


class TestPassCacheCLI:
    def test_simulate_warm_cache_hits(self, capsys, tmp_path):
        args = [
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4", "--pass-cache", str(tmp_path / "pc"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "pass cache: 0 hit(s), 1 miss(es)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "pass cache: 1 hit(s), 0 miss(es)" in warm
        # identical numbers either way
        assert cold.split("pass cache")[0] == warm.split("pass cache")[0]

    def test_simulate_metrics_carry_pass_cache_block(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "report.json"
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4", "--pass-cache", str(tmp_path / "pc"),
            "--metrics-out", str(out_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["pass_cache"]["puts"] == 1

    def test_cache_stats_gc_verify(self, capsys, tmp_path):
        directory = str(tmp_path / "pc")
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4", "--pass-cache", directory,
        ]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", directory]) == 0
        assert "1 entry" in capsys.readouterr().out

        assert main(["cache", "verify", directory]) == 0
        assert "1 entry ok" in capsys.readouterr().out

        assert main(["cache", "gc", directory, "--max-entries", "0"]) == 0
        assert "evicted 1 entry" in capsys.readouterr().out

    def test_cache_gc_requires_a_budget(self, capsys, tmp_path):
        (tmp_path / "pc").mkdir()
        assert main(["cache", "gc", str(tmp_path / "pc")]) == 2

    def test_cache_verify_flags_corruption(self, capsys, tmp_path):
        directory = tmp_path / "pc"
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4", "--pass-cache", str(directory),
        ]) == 0
        capsys.readouterr()
        entry = next(directory.glob("*.json"))
        entry.write_text("{ truncated", encoding="utf-8")

        assert main(["cache", "verify", str(directory)]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert main(["cache", "verify", str(directory), "--repair"]) == 0
        assert main(["cache", "verify", str(directory)]) == 0


class TestSamplingCLI:
    _SAMPLE_ARGS = [
        "simulate", "--trace", "mu3", "--length", "20000",
        "--size-kb", "4", "--sample", "interval=4000,k=3",
    ]

    def test_simulate_sample_prints_estimate_with_ci(self, capsys):
        assert main(self._SAMPLE_ARGS) == 0
        out = capsys.readouterr().out
        assert "read miss ratio (estimated):" in out
        assert "±" in out
        assert "refs simulated" in out
        # Estimates are labeled as such everywhere, never passed off
        # as exact results.
        assert "cycles (estimated):" in out

    def test_simulate_sample_is_deterministic(self, capsys):
        assert main(self._SAMPLE_ARGS) == 0
        first = capsys.readouterr().out
        assert main(self._SAMPLE_ARGS) == 0
        assert capsys.readouterr().out == first

    def test_simulate_sample_validate_reports_true_error(self, capsys):
        assert main(self._SAMPLE_ARGS + ["--sample-validate"]) == 0
        out = capsys.readouterr().out
        assert "validation: true read miss ratio" in out
        assert "abs error" in out

    def test_simulate_sample_rejects_engine(self, capsys):
        assert main(self._SAMPLE_ARGS + ["--engine"]) == 2
        assert "fastpath" in capsys.readouterr().err

    def test_simulate_sample_rejects_bad_spec(self, capsys):
        assert main([
            "simulate", "--trace", "mu3", "--length", "8000",
            "--size-kb", "4", "--sample", "nope=1",
        ]) == 2
        assert "unknown sampling spec key" in capsys.readouterr().err

    def test_simulate_sample_metrics_carry_sampling_block(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "report.json"
        assert main(self._SAMPLE_ARGS + [
            "--sample-validate", "--metrics-out", str(out_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == REPORT_SCHEMA
        block = payload["sampling"]
        assert block["estimates"] == 1
        assert block["validations"] == 1
        assert block["refs_sampled"] < block["refs_full"]
        assert block["ci_half_width"] >= 0.0

    def test_advise_sample_prints_summary_line(self, capsys):
        assert main([
            "advise", "16:40", "--length", "20000", "--traces", "mu3",
            "--sample", "interval=4000,k=3",
        ]) == 0
        out = capsys.readouterr().out
        assert "RAM-ladder recommendation" in out
        assert "sampling:" in out
        assert "refs simulated" in out

    def test_campaign_run_sample(self, capsys, tmp_path):
        assert main([
            "campaign", "run", str(tmp_path / "camp"),
            "--sizes-kb", "4,16", "--cycles-ns", "40",
            "--traces", "mu3", "--length", "20000",
            "--sample", "interval=4000,k=3",
        ]) == 0
        out = capsys.readouterr().out
        assert "sampling: interval=4000" in out
        assert "2 ok" in out

    @pytest.mark.parametrize("extra, needle", [
        (["--engine"], "fastpath"),
        (["--backend", "spool"], "spool"),
        (["--metrics"], "cycle ledger"),
    ])
    def test_campaign_run_sample_incompatibilities(
        self, capsys, tmp_path, extra, needle
    ):
        assert main([
            "campaign", "run", str(tmp_path / "camp"),
            "--sizes-kb", "4", "--cycles-ns", "40",
            "--traces", "mu3", "--length", "8000",
            "--sample", "1", *extra,
        ]) == 2
        assert needle in capsys.readouterr().err
