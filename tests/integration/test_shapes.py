"""Integration: the paper's qualitative shapes hold on the suite.

These are the scientific regression tests — each pins one published
claim's *direction* on the synthetic suite (magnitudes are documented in
EXPERIMENTS.md, not asserted, since the stimulus is synthetic).
"""

import numpy as np
import pytest

from repro.core.blocksize import optimal_block_size_words, product_law_points
from repro.core.equal_performance import slope_ns_per_doubling
from repro.core.sweep import (
    run_blocksize_sweep,
    run_point,
    run_speed_size_sweep,
)
from repro.sim.config import baseline_config
from repro.trace.suite import build_suite
from repro.units import KB


@pytest.fixture(scope="module")
def suite():
    return build_suite(length=60_000, names=["mu3", "rd2n4", "rd1n3"])


@pytest.fixture(scope="module")
def grid(suite):
    return run_speed_size_sweep(
        suite,
        sizes_each_bytes=[2 * KB, 8 * KB, 32 * KB, 128 * KB],
        cycle_times_ns=[20.0, 40.0, 60.0, 80.0],
    )


class TestFig31Shapes:
    def test_miss_ratio_decreases_with_size(self, grid):
        miss = grid.read_miss_ratio
        assert (np.diff(miss) < 0).all()

    def test_diminishing_returns(self, grid):
        # Absolute improvement shrinks with each doubling pair.
        miss = grid.read_miss_ratio
        drops = -np.diff(miss)
        assert drops[-1] < drops[0]

    def test_full_write_traffic_dominates_dirty(self, grid):
        assert (
            grid.write_traffic_ratio_full >= grid.write_traffic_ratio_dirty
        ).all()


class TestFig32_33Shapes:
    def test_cycle_count_decreases_with_cycle_time(self, grid):
        cpr = grid.cycles_per_reference
        assert (np.diff(cpr, axis=1) <= 1e-9).all()

    def test_execution_time_improves_with_size_at_fixed_clock(self, grid):
        exec_ns = grid.execution_ns
        assert (np.diff(exec_ns, axis=0) < 0).all()

    def test_small_caches_gain_more_from_size(self, grid):
        j = 1  # 40ns column
        small_gain = grid.execution_ns[0, j] / grid.execution_ns[1, j]
        large_gain = grid.execution_ns[-2, j] / grid.execution_ns[-1, j]
        assert small_gain > large_gain


class TestFig34Shapes:
    def test_slopes_fall_with_size(self, grid):
        j = 1
        slopes = [
            slope_ns_per_doubling(grid, i, j)
            for i in range(grid.n_sizes - 1)
        ]
        slopes = [s for s in slopes if s is not None]
        assert len(slopes) >= 2
        assert slopes == sorted(slopes, reverse=True)

    def test_slopes_roughly_clock_independent(self, grid):
        """Figure 3-4's regions are nearly vertical: the ns-per-doubling
        tradeoff changes far less with the clock than with size."""
        by_clock = [
            slope_ns_per_doubling(grid, 0, j) for j in range(grid.n_cycles - 1)
        ]
        by_clock = [s for s in by_clock if s is not None]
        by_size = slope_ns_per_doubling(grid, 2, 1)
        spread_clock = max(by_clock) - min(by_clock)
        assert spread_clock < by_clock[0]  # same order across clocks
        assert by_size < min(by_clock)  # size moves slopes much more


class TestAssociativityShapes:
    def test_two_way_reduces_misses_overall(self, suite):
        sizes = [2 * KB, 8 * KB, 32 * KB]
        dm = run_speed_size_sweep(suite, sizes, [40.0], assoc=1)
        sa = run_speed_size_sweep(suite, sizes, [40.0], assoc=2)
        assert sa.read_miss_ratio.mean() < dm.read_miss_ratio.mean()

    def test_gains_above_two_ways_are_smaller(self, suite):
        sizes = [2 * KB, 8 * KB]
        grids = {
            a: run_speed_size_sweep(suite, sizes, [40.0], assoc=a)
            for a in (1, 2, 4)
        }
        drop_12 = grids[1].read_miss_ratio - grids[2].read_miss_ratio
        drop_24 = grids[2].read_miss_ratio - grids[4].read_miss_ratio
        assert drop_24.mean() < drop_12.mean()


class TestBlockSizeShapes:
    @pytest.fixture(scope="class")
    def curves(self, suite):
        return run_blocksize_sweep(
            suite,
            block_sizes_words=[2, 4, 8, 16, 32, 64],
            latencies_ns=[100.0, 420.0],
            transfer_rates=[4.0, 0.25],
        )

    def test_execution_curves_are_u_shaped(self, curves):
        for curve in curves.values():
            k = int(np.argmin(curve.execution_ns))
            left = curve.execution_ns[: k + 1]
            right = curve.execution_ns[k:]
            assert (np.diff(left) <= 1e-9).all()
            assert (np.diff(right) >= -1e-9).all()

    def test_performance_optimum_below_miss_optimum(self, curves):
        for curve in curves.values():
            read_miss = curve.load_miss_ratio + curve.ifetch_miss_ratio
            miss_best = curve.block_sizes_words[int(np.argmin(read_miss))]
            assert optimal_block_size_words(curve) <= miss_best

    def test_optimum_grows_with_speed_product(self, curves):
        points = product_law_points(curves)
        optima = [p.optimal_block_words for p in points]
        # Sorted by product: optima must be non-decreasing overall
        # (allow small local noise between adjacent points).
        assert optima[-1] > optima[0]
        assert np.corrcoef(
            np.log2([p.speed_product for p in points]), np.log2(optima)
        )[0, 1] > 0.8

    def test_balance_line_crossover(self, curves):
        """Low products sit above the balance line, high products below
        (Figure 5-4's reading)."""
        points = product_law_points(curves)
        lowest = points[0]
        highest = points[-1]
        assert lowest.optimal_block_words > lowest.balance_block_words
        assert highest.optimal_block_words < highest.balance_block_words


class TestRunPoint:
    def test_aggregate_over_suite(self, suite):
        metrics = run_point(baseline_config(cache_size_bytes=8 * KB), suite)
        assert metrics.n_traces == len(suite)
        assert 0 < metrics.read_miss_ratio < 1
        assert metrics.execution_time_ns > 0
