"""Per-rule behaviour: each rule fires on its violating fixture, stays
silent on its clean one, and the guarded-path scoping holds."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, SourceFile, all_rules, lint_sources
from repro.lint.selftest import fixture_for, rule_fixtures

RULE_IDS = sorted(r.rule_id for r in all_rules())


def _lint(files, rule_id, config):
    rules = [r for r in all_rules() if r.rule_id == rule_id]
    sources = [SourceFile(rel, text) for rel, text in files]
    return lint_sources(sources, config=config, rules=rules)


def test_every_rule_has_a_fixture():
    assert {f.rule_id for f in rule_fixtures()} == set(RULE_IDS)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_violating_fixture_fires(rule_id):
    fixture = fixture_for(rule_id)
    result = _lint(fixture.violating, rule_id, fixture.config)
    hits = [v for v in result.violations if v.rule_id == rule_id]
    assert len(hits) >= fixture.expect_min
    # Findings are locatable and carry the rule id in their rendering.
    for violation in hits:
        assert violation.line >= 1
        assert rule_id in violation.render()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_silent(rule_id):
    fixture = fixture_for(rule_id)
    result = _lint(fixture.clean, rule_id, fixture.config)
    assert result.violations == []


def test_repro001_outside_guarded_paths_is_ignored():
    rel = "src/repro/trace/synthetic_helper.py"  # not a guarded package
    text = "import time\n\ndef stamp():\n    return time.time()\n"
    result = _lint([(rel, text)], "REPRO001", LintConfig())
    assert result.violations == []


def test_repro001_catches_insertion_into_engine():
    """The acceptance scenario: a stray time.time() in sim/engine.py
    must fail the lint gate."""
    root = Path(__file__).resolve().parents[2]
    engine = (root / "src/repro/sim/engine.py").read_text(
        encoding="utf-8"
    )
    sabotaged = engine + (
        "\n\ndef _timestamp_run():\n"
        "    import time\n"
        "    return time.time()\n"
    )
    clean = _lint(
        [("src/repro/sim/engine.py", engine)], "REPRO001", LintConfig()
    )
    assert clean.violations == []
    dirty = _lint(
        [("src/repro/sim/engine.py", sabotaged)], "REPRO001",
        LintConfig(),
    )
    assert len(dirty.violations) == 1
    assert "time.time" in dirty.violations[0].message


def test_repro002_allows_floor_division_and_exempt_names():
    rel = "src/repro/sim/quantize_helper.py"
    text = (
        "def quantize(total, refs):\n"
        "    cycles = total // refs\n"
        "    cycle_ns = 40.0\n"
        "    cycles_per_reference = total / refs\n"
        "    return cycles, cycle_ns, cycles_per_reference\n"
    )
    result = _lint([(rel, text)], "REPRO002", LintConfig())
    assert result.violations == []


def test_repro002_flags_division_into_cycle_counter():
    rel = "src/repro/sim/quantize_helper.py"
    text = "def quantize(total, refs):\n    cycles = total / refs\n"
    result = _lint([(rel, text)], "REPRO002", LintConfig())
    assert len(result.violations) == 1
    assert "true division" in result.violations[0].message


def test_repro003_allows_reads_everywhere():
    rel = "src/repro/sim/campaign.py"
    text = (
        "def load(path):\n"
        "    with open(path, encoding='utf-8') as handle:\n"
        "        return handle.read()\n"
    )
    result = _lint([(rel, text)], "REPRO003", LintConfig())
    assert result.violations == []


def test_repro004_narrow_handler_is_fine():
    rel = "src/repro/sim/cleanup_helper.py"
    text = (
        "def close(conn):\n"
        "    try:\n"
        "        conn.close()\n"
        "    except (OSError, ValueError):\n"
        "        pass\n"
    )
    result = _lint([(rel, text)], "REPRO004", LintConfig())
    assert result.violations == []


def test_repro005_iterated_but_not_imported():
    registry = (
        "from . import fig_a\n"
        "EXPERIMENTS = {\n"
        "    m.EXPERIMENT_ID: m.run for m in (fig_a, fig_b)\n"
        "}\n"
    )
    module = "EXPERIMENT_ID = 'a'\n\ndef run(settings=None):\n    pass\n"
    files = [
        ("src/repro/experiments/registry.py", registry),
        ("src/repro/experiments/fig_a.py", module),
        ("src/repro/experiments/fig_b.py", module),
    ]
    result = _lint(files, "REPRO005", LintConfig())
    messages = " | ".join(v.message for v in result.violations)
    assert "without importing" in messages


def test_repro006_missing_post_init_flags_scalars():
    rel = "src/repro/sim/config.py"
    text = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class Knob:\n"
        "    depth: int = 4\n"
    )
    result = _lint([(rel, text)], "REPRO006", LintConfig())
    assert len(result.violations) == 1
    assert "depth" in result.violations[0].message


def test_repro008_version_bump_without_refresh_is_flagged():
    fixture = fixture_for("REPRO008")
    rel, text = fixture.clean[0]
    bumped = text.replace("SCHEMA_VERSION = 2", "SCHEMA_VERSION = 3")
    result = _lint([(rel, bumped)], "REPRO008", fixture.config)
    assert len(result.violations) == 1
    assert "--update-fingerprints" in result.violations[0].message


def test_syntax_error_is_reported_not_raised():
    result = lint_sources(
        [SourceFile("src/repro/sim/broken.py", "def broken(:\n")],
        config=LintConfig(),
    )
    assert [v.rule_id for v in result.violations] == ["REPRO000"]
