"""The cross-module analysis engine: call resolution (aliases,
relative imports, re-exports through ``__init__``), bottom-up summary
propagation with recursion, hop chains, and the closure-fingerprinted
disk cache."""

from __future__ import annotations

import json

from repro.lint import LintConfig, SourceFile, build_project_graph
from repro.lint.projectgraph import (
    PROP_MONOTONIC,
    PROP_RAWWRITE,
    PROP_THREAD,
    PROP_WALLCLOCK,
    fkey,
)


def _graph(files, **config_kwargs):
    sources = [SourceFile(rel, text) for rel, text in files]
    return build_project_graph(sources, LintConfig(**config_kwargs))


_HELPER = (
    "src/repro/trace/stamputil.py",
    "import time\n\n"
    "def now_tag():\n"
    "    return time.time()\n",
)


# ----------------------------------------------------------------------
# Summary propagation across modules
# ----------------------------------------------------------------------
def test_wallclock_propagates_through_module_chain():
    graph = _graph([
        _HELPER,
        (
            "src/repro/sim/engine.py",
            "from repro.trace.stamputil import now_tag\n\n"
            "def step(state):\n"
            "    return now_tag()\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/engine.py", "step"))
    assert PROP_WALLCLOCK in summary
    hop = summary[PROP_WALLCLOCK]
    assert hop.kind == "call"
    assert hop.detail == fkey("src/repro/trace/stamputil.py", "now_tag")


def test_chain_walks_down_to_the_direct_fact():
    graph = _graph([
        _HELPER,
        (
            "src/repro/sim/engine.py",
            "from repro.trace.stamputil import now_tag\n\n"
            "def step(state):\n"
            "    return now_tag()\n",
        ),
    ])
    key = fkey("src/repro/sim/engine.py", "step")
    chain = graph.chain(key, PROP_WALLCLOCK)
    assert [h.kind for h in chain] == ["call", "direct"]
    assert chain[-1].rel == "src/repro/trace/stamputil.py"
    text = graph.describe_chain(key, PROP_WALLCLOCK)
    assert "step" in text and "now_tag" in text
    assert "time.time()" in text


def test_relative_import_resolves_to_sibling_module():
    graph = _graph([
        (
            "src/repro/sim/helper.py",
            "import random\n\n"
            "def draw():\n"
            "    return random.random()\n",
        ),
        (
            "src/repro/sim/engine.py",
            "from .helper import draw\n\n"
            "def step(state):\n"
            "    return draw()\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/engine.py", "step"))
    assert PROP_WALLCLOCK in summary


def test_reexport_through_init_is_chased():
    graph = _graph([
        _HELPER,
        (
            "src/repro/trace/__init__.py",
            "from .stamputil import now_tag\n",
        ),
        (
            "src/repro/sim/engine.py",
            "from repro.trace import now_tag\n\n"
            "def step(state):\n"
            "    return now_tag()\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/engine.py", "step"))
    assert PROP_WALLCLOCK in summary


def test_method_and_self_call_resolution():
    graph = _graph([
        (
            "src/repro/sim/engine.py",
            "import time\n\n"
            "class Engine:\n"
            "    def _stamp(self):\n"
            "        return time.time()\n"
            "    def step(self, n):\n"
            "        return self._stamp()\n",
        ),
    ])
    rel = "src/repro/sim/engine.py"
    assert PROP_WALLCLOCK in graph.summary(fkey(rel, "Engine._stamp"))
    summary = graph.summary(fkey(rel, "Engine.step"))
    assert summary[PROP_WALLCLOCK].kind == "call"


def test_mutual_recursion_reaches_fixed_point():
    graph = _graph([
        (
            "src/repro/sim/engine.py",
            "import time\n\n"
            "def ping(n):\n"
            "    return pong(n - 1)\n\n"
            "def pong(n):\n"
            "    if n <= 0:\n"
            "        return time.time()\n"
            "    return ping(n)\n",
        ),
    ])
    rel = "src/repro/sim/engine.py"
    for name in ("ping", "pong"):
        assert PROP_WALLCLOCK in graph.summary(fkey(rel, name)), name
    # The chain terminates despite the cycle.
    chain = graph.chain(fkey(rel, "ping"), PROP_WALLCLOCK)
    assert chain[-1].kind == "direct"


def test_clean_module_has_no_wallclock_summary():
    graph = _graph([
        (
            "src/repro/sim/engine.py",
            "def step(state, n):\n"
            "    return state + n\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/engine.py", "step"))
    assert PROP_WALLCLOCK not in summary


# ----------------------------------------------------------------------
# Other lattice properties
# ----------------------------------------------------------------------
def test_rawwrite_fact_and_atomic_writer_blessing():
    graph = _graph(
        [
            (
                "src/repro/sim/io.py",
                "def atomic_write_text(path, text):\n"
                "    open(path, 'w').write(text)\n\n"
                "def raw_dump(path, text):\n"
                "    open(path, 'w').write(text)\n",
            ),
            (
                "src/repro/sim/campaign.py",
                "from .io import atomic_write_text, raw_dump\n\n"
                "def save(path, text):\n"
                "    atomic_write_text(path, text)\n\n"
                "def sloppy(path, text):\n"
                "    raw_dump(path, text)\n",
            ),
        ],
    )
    rel = "src/repro/sim/campaign.py"
    # Writes inside a blessed atomic writer don't taint its callers...
    assert PROP_RAWWRITE not in graph.summary(fkey(rel, "save"))
    # ...but an unblessed helper does.
    assert PROP_RAWWRITE in graph.summary(fkey(rel, "sloppy"))


def test_thread_spawn_is_summarized():
    graph = _graph([
        (
            "src/repro/sim/pool.py",
            "import threading\n\n"
            "def start(fn):\n"
            "    threading.Thread(target=fn).start()\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/pool.py", "start"))
    assert PROP_THREAD in summary


def test_monotonic_only_taints_return_position():
    graph = _graph([
        (
            "src/repro/sim/clock.py",
            "import time\n\n"
            "def reading():\n"
            "    return time.monotonic()\n\n"
            "def duration():\n"
            "    t0 = time.monotonic()\n"
            "    return 1\n",
        ),
    ])
    rel = "src/repro/sim/clock.py"
    assert PROP_MONOTONIC in graph.summary(fkey(rel, "reading"))
    assert PROP_MONOTONIC not in graph.summary(fkey(rel, "duration"))


def test_suppressed_fact_does_not_taint_callers():
    graph = _graph([
        (
            "src/repro/sim/timer.py",
            "import time\n\n"
            "def host_stamp():\n"
            "    return time.time()"
            "  # reprolint: disable=REPRO001\n",
        ),
        (
            "src/repro/sim/engine.py",
            "from .timer import host_stamp\n\n"
            "def step(state):\n"
            "    return host_stamp()\n",
        ),
    ])
    summary = graph.summary(fkey("src/repro/sim/engine.py", "step"))
    assert PROP_WALLCLOCK not in summary


def test_module_level_code_is_a_pseudo_function():
    graph = _graph([
        (
            "src/repro/sim/setup.py",
            "import time\n"
            "STARTED = time.time()\n",
        ),
    ])
    summary = graph.summary(
        fkey("src/repro/sim/setup.py", "<module>")
    )
    assert PROP_WALLCLOCK in summary
    assert summary[PROP_WALLCLOCK].kind == "direct"


# ----------------------------------------------------------------------
# Disk cache: reuse and transitive invalidation
# ----------------------------------------------------------------------
def _fresh_graph(files, **config_kwargs):
    """Build bypassing the in-process memo, so the disk cache (which
    separate lint processes rely on) is what gets exercised."""
    from repro.lint import projectgraph

    projectgraph._MEMO.clear()
    return _graph(files, **config_kwargs)


_CACHED_FILES = [
    _HELPER,
    (
        "src/repro/sim/engine.py",
        "from repro.trace.stamputil import now_tag\n\n"
        "def step(state):\n"
        "    return now_tag()\n",
    ),
    (
        "src/repro/sim/other.py",
        "def unrelated(x):\n"
        "    return x + 1\n",
    ),
]


def test_disk_cache_reuses_unchanged_modules(tmp_path):
    cache = tmp_path / "graph-cache.json"
    g1 = _fresh_graph(_CACHED_FILES, graph_cache_path=str(cache))
    assert (g1.stats.cache_hits, g1.stats.cache_misses) == (0, 3)
    assert cache.is_file()

    g2 = _fresh_graph(_CACHED_FILES, graph_cache_path=str(cache))
    assert (g2.stats.cache_hits, g2.stats.cache_misses) == (3, 0)
    # Cached summaries are bit-identical to scanned ones.
    key = fkey("src/repro/sim/engine.py", "step")
    assert g2.summary(key)[PROP_WALLCLOCK] == \
        g1.summary(key)[PROP_WALLCLOCK]


def test_disk_cache_invalidates_importers_transitively(tmp_path):
    cache = tmp_path / "graph-cache.json"
    _fresh_graph(_CACHED_FILES, graph_cache_path=str(cache))

    edited = [
        (
            _HELPER[0],
            "def now_tag():\n"
            "    return 0\n",
        ),
    ] + _CACHED_FILES[1:]
    g2 = _fresh_graph(edited, graph_cache_path=str(cache))
    # stamputil changed, engine imports it (rescan both); other.py is
    # untouched and stays frozen.
    assert g2.stats.cache_hits == 1
    assert g2.stats.cache_misses == 2
    key = fkey("src/repro/sim/engine.py", "step")
    assert PROP_WALLCLOCK not in g2.summary(key)


def test_disk_cache_ignored_on_config_change(tmp_path):
    cache = tmp_path / "graph-cache.json"
    _fresh_graph(_CACHED_FILES, graph_cache_path=str(cache))
    g2 = _fresh_graph(
        _CACHED_FILES,
        graph_cache_path=str(cache),
        atomic_writers=("atomic_write_text",),
    )
    assert g2.stats.cache_hits == 0


def test_corrupt_disk_cache_is_rebuilt(tmp_path):
    cache = tmp_path / "graph-cache.json"
    cache.write_text("{not json", encoding="utf-8")
    g = _fresh_graph(_CACHED_FILES, graph_cache_path=str(cache))
    assert g.stats.cache_misses == 3
    # And the rebuild leaves a valid cache behind.
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert set(payload["modules"]) == {rel for rel, _ in _CACHED_FILES}


# ----------------------------------------------------------------------
# In-process memo
# ----------------------------------------------------------------------
def test_same_sources_and_config_share_one_build():
    sources = [SourceFile(rel, text) for rel, text in _CACHED_FILES]
    config = LintConfig()
    g1 = build_project_graph(sources, config)
    g2 = build_project_graph(
        [SourceFile(rel, text) for rel, text in _CACHED_FILES],
        LintConfig(),
    )
    assert g1 is g2
    edited = [SourceFile(_HELPER[0], "def now_tag():\n    return 0\n")]
    g3 = build_project_graph(edited, config)
    assert g3 is not g1
