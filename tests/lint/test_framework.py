"""Framework behaviour: suppression, baseline ratchet, caching, config
loading, fingerprint regeneration — and the repo itself lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintCache,
    LintConfig,
    SourceFile,
    all_rules,
    lint_paths,
    lint_sources,
    load_config,
    run_self_test,
)
from repro.lint.framework import cache_signature, collect_sources
from repro.lint.rules_structure import extract_schemas, write_fingerprints

REPO_ROOT = Path(__file__).resolve().parents[2]

_VIOLATING = (
    "import time\n\n"
    "def stamp(stats):\n"
    "    stats['at'] = time.time()\n"
    "    return stats\n"
)


def _rule(rule_id):
    return [r for r in all_rules() if r.rule_id == rule_id]


# ----------------------------------------------------------------------
# The repo's own gates
# ----------------------------------------------------------------------
def test_repo_at_head_lints_clean():
    """`repro-sim lint src/` must exit clean on the committed tree."""
    result = lint_paths(
        [REPO_ROOT / "src"], root=REPO_ROOT, use_cache=False
    )
    assert result.violations == [], "\n" + result.render()


def test_self_test_passes():
    ok, report = run_self_test()
    assert ok, report


def test_committed_fingerprints_match_sources():
    config = load_config(REPO_ROOT)
    sources = collect_sources([REPO_ROOT / "src"], REPO_ROOT)
    current = extract_schemas(sources, config)
    committed = json.loads(
        (REPO_ROOT / config.fingerprints_path).read_text(
            encoding="utf-8"
        )
    )["schemas"]
    assert set(current) == set(committed)
    for name, entry in current.items():
        assert "error" not in entry, entry
        assert committed[name]["fingerprint"] == entry["fingerprint"]
        assert committed[name]["version"] == entry["version"]


def test_config_table_is_read_from_pyproject():
    config = load_config(REPO_ROOT)
    if sys.version_info < (3, 11):
        pytest.skip("tomllib unavailable; defaults apply")
    assert config.enabled == tuple(
        f"REPRO00{i}" for i in range(1, 10)
    ) + ("REPRO010", "REPRO011", "REPRO012", "REPRO013",
         "REPRO014", "REPRO015")
    assert "repro/sim/engine.py" in config.hot_path_modules
    assert "repro/sim" in config.deterministic_paths
    assert "repro/sim/campaign.py" in config.persistence_modules
    assert "repro/sim/workqueue.py" in config.workqueue_modules
    assert "repro/sim/benchhistory.py" in config.bench_modules
    assert "atomic_claim_text" in config.atomic_writers


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def test_line_suppression():
    text = _VIOLATING.replace(
        "time.time()",
        "time.time()  # reprolint: disable=REPRO001",
    )
    result = lint_sources(
        [SourceFile("src/repro/sim/helper.py", text)],
        rules=_rule("REPRO001"),
    )
    assert result.violations == []


def test_suppression_of_other_rule_does_not_apply():
    text = _VIOLATING.replace(
        "time.time()",
        "time.time()  # reprolint: disable=REPRO002",
    )
    result = lint_sources(
        [SourceFile("src/repro/sim/helper.py", text)],
        rules=_rule("REPRO001"),
    )
    assert len(result.violations) == 1


def test_file_suppression_near_top_applies():
    header = "# reprolint: disable-file=REPRO001\n"
    result = lint_sources(
        [SourceFile("src/repro/sim/helper.py", header + _VIOLATING)],
        rules=_rule("REPRO001"),
    )
    assert result.violations == []


def test_file_suppression_past_window_is_ignored():
    padding = "# filler\n" * 20  # push the comment past the scan window
    tail_comment = padding + \
        "# reprolint: disable-file=REPRO001\n" + _VIOLATING
    result = lint_sources(
        [SourceFile("src/repro/sim/helper.py", tail_comment)],
        rules=_rule("REPRO001"),
    )
    assert len(result.violations) == 1  # too late in the file


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
def test_baseline_absorbs_known_violations_but_not_new_ones():
    src = SourceFile("src/repro/sim/helper.py", _VIOLATING)
    first = lint_sources([src], rules=_rule("REPRO001"))
    assert len(first.violations) == 1
    baseline = Baseline.from_violations(
        [(v, src.source_line(v.line)) for v in first.violations]
    )
    second = lint_sources(
        [src], rules=_rule("REPRO001"), baseline=baseline
    )
    assert second.violations == []
    assert len(second.baselined) == 1
    # A second, new occurrence exceeds the baselined count and fails.
    doubled = SourceFile(
        "src/repro/sim/helper.py",
        _VIOLATING + "\ndef again():\n    return time.time()\n",
    )
    third = lint_sources(
        [doubled], rules=_rule("REPRO001"), baseline=baseline
    )
    assert len(third.violations) == 1
    assert len(third.baselined) == 1


def test_baseline_round_trips_through_disk(tmp_path):
    src = SourceFile("src/repro/sim/helper.py", _VIOLATING)
    found = lint_sources([src], rules=_rule("REPRO001")).violations
    baseline = Baseline.from_violations(
        [(v, src.source_line(v.line)) for v in found]
    )
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)
    reloaded = Baseline.load(path)
    assert reloaded.counts == baseline.counts


# ----------------------------------------------------------------------
# Content-hash cache
# ----------------------------------------------------------------------
def test_cache_hits_on_unchanged_content_and_misses_on_edit(tmp_path):
    config = LintConfig()
    rules = _rule("REPRO001")
    signature = cache_signature(config, rules)
    cache_path = tmp_path / "cache.json"
    src = SourceFile("src/repro/sim/helper.py", _VIOLATING)

    cache = LintCache(cache_path, signature)
    first = lint_sources([src], config=config, rules=rules, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    assert len(first.violations) == 1

    cache = LintCache(cache_path, signature)
    second = lint_sources([src], config=config, rules=rules, cache=cache)
    assert (cache.hits, cache.misses) == (1, 0)
    assert [v.to_dict() for v in second.violations] == \
        [v.to_dict() for v in first.violations]

    edited = SourceFile("src/repro/sim/helper.py",
                        _VIOLATING + "\nX = 1\n")
    cache = LintCache(cache_path, signature)
    lint_sources([edited], config=config, rules=rules, cache=cache)
    assert cache.misses == 1


def test_cache_invalidated_by_signature_change(tmp_path):
    config = LintConfig()
    rules = _rule("REPRO001")
    cache_path = tmp_path / "cache.json"
    src = SourceFile("src/repro/sim/helper.py", _VIOLATING)
    cache = LintCache(cache_path, cache_signature(config, rules))
    lint_sources([src], config=config, rules=rules, cache=cache)

    other = LintCache(cache_path, "different-signature")
    assert other.get(src) is None


# ----------------------------------------------------------------------
# Fingerprint regeneration
# ----------------------------------------------------------------------
def test_write_fingerprints_round_trip(tmp_path):
    config = load_config(REPO_ROOT)
    sources = collect_sources([REPO_ROOT / "src"], REPO_ROOT)
    out = tmp_path / "fingerprints.json"
    schemas = write_fingerprints(sources, config, out)
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["schemas"] == schemas
    assert {
        "campaign_result", "run_report", "replay_outcome"
    } <= set(schemas)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


def test_cli_lint_src_exits_zero():
    proc = _run_cli("lint", "src", "--no-cache")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_lint_json_format():
    proc = _run_cli("lint", "src", "--no-cache", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["clean"] is True
    assert payload["violations"] == []


def test_cli_lint_self_test():
    proc = _run_cli("lint", "--self-test")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "self-test PASSED" in proc.stdout


def test_cli_lint_unknown_rule_is_usage_error():
    proc = _run_cli("lint", "src", "--rule", "REPRO999")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_lint_detects_sabotage(tmp_path):
    """End to end: copying the tree and inserting time.time() into
    sim/engine.py must flip the exit code to 1."""
    import shutil

    workdir = tmp_path / "repo"
    (workdir / "src").parent.mkdir(parents=True, exist_ok=True)
    shutil.copytree(REPO_ROOT / "src", workdir / "src")
    shutil.copy(REPO_ROOT / "pyproject.toml", workdir / "pyproject.toml")
    shutil.copy(
        REPO_ROOT / "lint-baseline.json", workdir / "lint-baseline.json"
    )
    engine = workdir / "src/repro/sim/engine.py"
    engine.write_text(
        engine.read_text(encoding="utf-8")
        + "\n\ndef _stamp():\n    import time\n    return time.time()\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "src",
         "--no-cache"],
        cwd=workdir, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"),
             "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "REPRO001" in proc.stdout
