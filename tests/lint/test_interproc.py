"""The interprocedural rules (REPRO012/013/014), the dead-suppression
audit (REPRO015), the generation-keyed lint cache, and the new CLI
surface (``--graph-stats``, ``--why``)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import (
    LintCache,
    LintConfig,
    SourceFile,
    all_rules,
    lint_sources,
)
from repro.lint.framework import cache_signature
from repro.lint.rules_interproc import explain_why

REPO_ROOT = Path(__file__).resolve().parents[2]


def _rule(rule_id):
    return [r for r in all_rules() if r.rule_id == rule_id]


_HELPER = SourceFile(
    "src/repro/trace/stamputil.py",
    "import time\n\n"
    "def now_tag():\n"
    "    return time.time()\n",
)
_ENGINE = SourceFile(
    "src/repro/sim/engine.py",
    "from repro.trace.stamputil import now_tag\n\n"
    "def step(state, n):\n"
    "    return now_tag()\n",
)


# ----------------------------------------------------------------------
# REPRO012: the acceptance scenario
# ----------------------------------------------------------------------
def test_repro012_catches_cross_module_chain():
    result = lint_sources([_ENGINE, _HELPER], rules=_rule("REPRO012"))
    assert len(result.violations) == 1
    v = result.violations[0]
    assert v.path == "src/repro/sim/engine.py"
    # The message carries the whole chain down to the clock call.
    assert "step" in v.message
    assert "now_tag" in v.message
    assert "time.time()" in v.message


def test_repro001_provably_misses_the_same_chain():
    """The per-file rule sees nothing: engine.py contains no banned
    call, and stamputil.py is outside every deterministic path."""
    result = lint_sources([_ENGINE, _HELPER], rules=_rule("REPRO001"))
    assert result.violations == []


def test_repro012_ignores_direct_calls_in_hot_path():
    # A time.time() *in* engine.py is REPRO001's finding; REPRO012
    # only reports chains so one defect never fires two rules.
    direct = SourceFile(
        "src/repro/sim/engine.py",
        "import time\n\n"
        "def step(state, n):\n"
        "    return time.time()\n",
    )
    result = lint_sources([direct], rules=_rule("REPRO012"))
    assert result.violations == []


def test_repro012_clean_when_helper_is_deterministic():
    clean_helper = SourceFile(
        "src/repro/trace/stamputil.py",
        "def now_tag():\n"
        "    return 0\n",
    )
    result = lint_sources(
        [_ENGINE, clean_helper], rules=_rule("REPRO012")
    )
    assert result.violations == []


def test_repro012_outside_hot_path_is_ignored():
    caller = SourceFile(
        "src/repro/sim/report.py",  # not a hot-path module
        "from repro.trace.stamputil import now_tag\n\n"
        "def annotate(doc):\n"
        "    return now_tag()\n",
    )
    result = lint_sources([caller, _HELPER], rules=_rule("REPRO012"))
    assert result.violations == []


# ----------------------------------------------------------------------
# REPRO013: atomic-write reachability
# ----------------------------------------------------------------------
_RAWIO = SourceFile(
    "src/repro/util/rawio.py",
    "def dump(path, text):\n"
    "    with open(path, 'w') as fh:\n"
    "        fh.write(text)\n",
)
_CAMPAIGN = SourceFile(
    "src/repro/sim/campaign.py",
    "from repro.util.rawio import dump\n\n"
    "def save_results(path, rows):\n"
    "    dump(path, repr(rows))\n",
)


def test_repro013_catches_escaped_write_helper():
    result = lint_sources(
        [_CAMPAIGN, _RAWIO], rules=_rule("REPRO013")
    )
    assert len(result.violations) == 1
    v = result.violations[0]
    assert v.path == "src/repro/sim/campaign.py"
    assert "rawio" in v.message


def test_repro013_skips_chains_through_atomic_writers():
    blessed = SourceFile(
        "src/repro/sim/campaign.py",
        "from repro.util.rawio import atomic_write_text\n\n"
        "def save_results(path, rows):\n"
        "    atomic_write_text(path, repr(rows))\n",
    )
    writer = SourceFile(
        "src/repro/util/rawio.py",
        "def atomic_write_text(path, text):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(text)\n",
    )
    result = lint_sources([blessed, writer], rules=_rule("REPRO013"))
    assert result.violations == []


def test_repro013_skips_writes_inside_scoped_modules():
    # A chain ending in another scoped module is that module's own
    # per-file finding, not a REPRO013 escape.
    queue = SourceFile(
        "src/repro/sim/workqueue.py",
        "def spool(path, text):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(text)\n",
    )
    caller = SourceFile(
        "src/repro/sim/campaign.py",
        "from repro.sim.workqueue import spool\n\n"
        "def save_results(path, rows):\n"
        "    spool(path, repr(rows))\n",
    )
    result = lint_sources([caller, queue], rules=_rule("REPRO013"))
    assert result.violations == []


# ----------------------------------------------------------------------
# REPRO014: monotonic clock discipline
# ----------------------------------------------------------------------
def _lint14(text):
    src = SourceFile("src/repro/sim/workqueue.py", text)
    return lint_sources([src], rules=_rule("REPRO014"))


def test_repro014_flags_serialized_monotonic_reading():
    result = _lint14(
        "import time\n\n"
        "def lease_doc(worker):\n"
        "    now = time.monotonic()\n"
        "    return {'worker': worker, 'at': now}\n"
    )
    assert len(result.violations) == 1
    assert result.violations[0].line == 5


def test_repro014_allows_serialized_durations():
    result = _lint14(
        "import time\n\n"
        "def timed(fn):\n"
        "    t0 = time.monotonic()\n"
        "    fn()\n"
        "    return {'elapsed': time.monotonic() - t0}\n"
    )
    assert result.violations == []


def test_repro014_taint_flows_through_local_helper():
    queue = SourceFile(
        "src/repro/sim/workqueue.py",
        "from repro.sim.clockutil import stamp\n\n"
        "def lease_doc(worker):\n"
        "    return {'worker': worker, 'at': stamp()}\n",
    )
    clock = SourceFile(
        "src/repro/sim/clockutil.py",
        "import time\n\n"
        "def stamp():\n"
        "    return time.monotonic()\n",
    )
    result = lint_sources([queue, clock], rules=_rule("REPRO014"))
    assert len(result.violations) == 1


def test_repro014_ignores_unscoped_modules():
    src = SourceFile(
        "src/repro/sim/telemetry.py",  # persistence, not queue/bench
        "import time\n\n"
        "def doc():\n"
        "    return {'at': time.monotonic()}\n",
    )
    result = lint_sources([src], rules=_rule("REPRO014"))
    assert result.violations == []


# ----------------------------------------------------------------------
# REPRO015: dead suppressions
# ----------------------------------------------------------------------
def _lint15(text):
    src = SourceFile("src/repro/sim/helper.py", text)
    return lint_sources([src], rules=_rule("REPRO015"))


def test_repro015_flags_dead_line_suppression():
    result = _lint15(
        "def pure(x):\n"
        "    return x + 1  # reprolint: disable=REPRO001\n"
    )
    assert len(result.violations) == 1
    assert "REPRO001" in result.violations[0].message


def test_repro015_accepts_live_suppression():
    result = _lint15(
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=REPRO001\n"
    )
    assert result.violations == []


def test_repro015_flags_unknown_rule_id():
    result = _lint15(
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=REPRO999\n"
    )
    messages = [v.message for v in result.violations]
    assert any("REPRO999" in m and "unknown" in m for m in messages)


def test_repro015_flags_disable_file_below_window():
    padding = "# filler\n" * 20
    result = _lint15(
        padding + "# reprolint: disable-file=REPRO001\n"
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    assert len(result.violations) == 1
    assert "window" in result.violations[0].message


def test_repro015_ignores_suppression_text_in_strings():
    result = _lint15(
        "FIXTURE = '''\n"
        "x = 1  # reprolint: disable=REPRO001\n"
        "'''\n"
    )
    assert result.violations == []


# ----------------------------------------------------------------------
# LintCache: generation keying (satellite a)
# ----------------------------------------------------------------------
_VIOLATING = SourceFile(
    "src/repro/sim/helper.py",
    "import time\n\n"
    "def stamp(stats):\n"
    "    stats['at'] = time.time()\n"
    "    return stats\n",
)


def test_alternating_rule_selections_both_stay_cached(tmp_path):
    """The pre-v2 cache stored one signature for the whole file: two
    interleaved ``--rule`` selections evicted each other every run."""
    config = LintConfig()
    cache_path = tmp_path / "cache.json"
    sig1 = cache_signature(config, _rule("REPRO001"))
    sig2 = cache_signature(config, _rule("REPRO002"))
    assert sig1 != sig2

    for sig, rules in ((sig1, _rule("REPRO001")),
                       (sig2, _rule("REPRO002"))):
        cache = LintCache(cache_path, sig)
        lint_sources([_VIOLATING], config=config, rules=rules,
                     cache=cache)
        assert cache.misses == 1

    # Second round: both selections hit.
    for sig, rules in ((sig1, _rule("REPRO001")),
                       (sig2, _rule("REPRO002"))):
        cache = LintCache(cache_path, sig)
        lint_sources([_VIOLATING], config=config, rules=rules,
                     cache=cache)
        assert (cache.hits, cache.misses) == (1, 0), sig


def test_cache_generations_are_bounded(tmp_path):
    config = LintConfig()
    cache_path = tmp_path / "cache.json"
    for i in range(6):
        cache = LintCache(cache_path, f"signature-{i}")
        lint_sources([_VIOLATING], config=config,
                     rules=_rule("REPRO001"), cache=cache)
    payload = json.loads(cache_path.read_text(encoding="utf-8"))
    assert len(payload["generations"]) == 4
    # Most recent generations survive; the oldest were evicted.
    assert "signature-5" in payload["generations"]
    assert "signature-0" not in payload["generations"]


def test_legacy_single_signature_payload_is_discarded(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text(json.dumps({
        "version": 2, "signature": "old", "files": {"x.py": []},
    }), encoding="utf-8")
    cache = LintCache(cache_path, "old")
    assert cache.get(_VIOLATING) is None


# ----------------------------------------------------------------------
# explain_why (the --why engine)
# ----------------------------------------------------------------------
def test_explain_why_renders_full_chain():
    lines = explain_why(
        [_ENGINE, _HELPER], LintConfig(), "REPRO012", None
    )
    assert len(lines) == 1
    assert "step" in lines[0]
    assert "time.time()" in lines[0]


def test_explain_why_path_filter_reaches_mid_chain_helpers():
    lines = explain_why(
        [_ENGINE, _HELPER], LintConfig(), "REPRO012", "stamputil"
    )
    assert len(lines) == 1
    assert lines[0].startswith("now_tag")


def test_explain_why_rejects_file_scope_rules():
    try:
        explain_why([_ENGINE], LintConfig(), "REPRO001", None)
    except ValueError as exc:
        assert "REPRO001" in str(exc)
    else:
        raise AssertionError("expected ValueError")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )


def test_cli_graph_stats_text():
    proc = _run_cli("lint", "src", "--no-cache", "--graph-stats")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "project graph:" in proc.stdout
    assert "call edge(s)" in proc.stdout


def test_cli_graph_stats_json():
    proc = _run_cli("lint", "src", "--no-cache", "--graph-stats",
                    "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    graph = payload["graph"]
    assert graph["modules"] > 50
    assert graph["functions"] > graph["modules"]
    assert "wallclock" in graph["prop_counts"]


def test_cli_why_clean_tree_reports_no_chains():
    proc = _run_cli("lint", "src", "--no-cache", "--why", "REPRO012")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no REPRO012 chains" in proc.stdout


def test_cli_why_unknown_rule_is_usage_error():
    proc = _run_cli("lint", "src", "--no-cache", "--why", "REPRO001")
    assert proc.returncode == 2
