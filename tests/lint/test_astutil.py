"""Edge cases for the shared AST helpers, especially the import-alias
resolution the project call graph depends on: relative imports, dotted
``import a.b.c``, as-renames, and alias shadowing by later bindings."""

from __future__ import annotations

import ast

from repro.lint.astutil import (
    canonical_call_name,
    import_aliases,
    module_dotted,
    module_package,
)


def _aliases(src, package=None):
    return import_aliases(ast.parse(src), package=package)


# ----------------------------------------------------------------------
# module_dotted / module_package
# ----------------------------------------------------------------------
def test_module_dotted_strips_src_and_suffix():
    assert module_dotted("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_dotted("src/repro/sim/__init__.py") == "repro.sim"
    assert module_dotted("tools/gen.py") == "tools.gen"


def test_module_package_of_plain_module_and_init():
    assert module_package("src/repro/sim/engine.py") == "repro.sim"
    assert module_package("src/repro/sim/__init__.py") == "repro.sim"
    assert module_package("src/top.py") == ""


# ----------------------------------------------------------------------
# import_aliases: plain and dotted imports
# ----------------------------------------------------------------------
def test_dotted_import_binds_head_name():
    # `import a.b.c` binds only `a`; attribute access supplies the rest.
    aliases = _aliases("import os.path.sep\n")
    assert aliases == {"os": "os"}


def test_dotted_import_with_asname_binds_full_path():
    aliases = _aliases("import concurrent.futures as cf\n")
    assert aliases == {"cf": "concurrent.futures"}


def test_from_import_with_asname():
    aliases = _aliases("from time import perf_counter as pc\n")
    assert aliases == {"pc": "time.perf_counter"}


# ----------------------------------------------------------------------
# import_aliases: relative imports resolve against `package`
# ----------------------------------------------------------------------
def test_relative_import_sibling_module():
    aliases = _aliases(
        "from . import engine\n", package="repro.sim"
    )
    assert aliases == {"engine": "repro.sim.engine"}


def test_relative_import_member_of_sibling():
    aliases = _aliases(
        "from .campaign import save_results as save\n",
        package="repro.sim",
    )
    assert aliases == {"save": "repro.sim.campaign.save_results"}


def test_two_level_relative_import():
    aliases = _aliases(
        "from ..cache.cache import Cache\n", package="repro.sim"
    )
    assert aliases == {"Cache": "repro.cache.cache.Cache"}


def test_over_deep_relative_import_degrades_to_bare_name():
    # More dots than enclosing packages: keep the bare module name so
    # suffix matching still works instead of raising.
    aliases = _aliases(
        "from ...nowhere import thing\n", package="repro"
    )
    assert aliases == {"thing": "nowhere.thing"}


def test_relative_import_without_package_keeps_bare_name():
    aliases = _aliases("from .campaign import save\n")
    assert aliases == {"save": "campaign.save"}


# ----------------------------------------------------------------------
# import_aliases: shadowing by later module-level bindings
# ----------------------------------------------------------------------
def test_alias_shadowed_by_later_assignment_is_dropped():
    aliases = _aliases(
        "import time\n"
        "time = object()\n"
    )
    assert "time" not in aliases


def test_alias_shadowed_by_function_def_is_dropped():
    aliases = _aliases(
        "from os import getcwd\n"
        "def getcwd():\n"
        "    return '/'\n"
    )
    assert "getcwd" not in aliases


def test_binding_before_import_does_not_shadow():
    # The import wins when it comes after the assignment.
    aliases = _aliases(
        "time = None\n"
        "import time\n"
    )
    assert aliases == {"time": "time"}


def test_tuple_assignment_shadows_each_name():
    aliases = _aliases(
        "import json, math\n"
        "json, math = object(), object()\n"
    )
    assert aliases == {}


def test_annotated_assignment_without_value_does_not_shadow():
    aliases = _aliases(
        "import time\n"
        "time: object\n"
    )
    assert aliases == {"time": "time"}


# ----------------------------------------------------------------------
# canonical_call_name through the alias table
# ----------------------------------------------------------------------
def test_canonical_call_name_expands_renamed_module():
    tree = ast.parse("import time as t\nt.time()\n")
    aliases = import_aliases(tree)
    call = tree.body[1].value
    assert canonical_call_name(call.func, aliases) == "time.time"


def test_canonical_call_name_respects_shadowing():
    tree = ast.parse(
        "import time as t\n"
        "t = FakeClock()\n"
        "t.time()\n"
    )
    aliases = import_aliases(tree)
    call = tree.body[2].value
    # `t` was rebound to a fake: the call keeps the local name instead
    # of expanding to `time.time`, so rules won't false-positive.
    assert canonical_call_name(call.func, aliases) == "t.time"
