"""Unit helpers: conversions and synchronous quantization."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    BYTES_PER_WORD,
    KB,
    MB,
    bytes_to_words,
    ceil_div,
    format_size,
    is_power_of_two,
    log2_exact,
    quantize_ns,
    words_to_bytes,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            ceil_div(1, 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ceil_div(-1, 2)


class TestPowersOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for value in (0, -2, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(4096) == 12

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            log2_exact(12)


class TestWordConversions:
    def test_round_trip(self):
        assert bytes_to_words(words_to_bytes(17)) == 17

    def test_bytes_per_word(self):
        assert words_to_bytes(1) == BYTES_PER_WORD == 4

    def test_unaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            bytes_to_words(6)


class TestQuantizeNs:
    def test_exact_multiple_not_rounded_up(self):
        # 180/20 must be exactly 9, not 10 — the Table 2 pitfall.
        assert quantize_ns(180.0, 20.0) == 9

    def test_rounds_up(self):
        assert quantize_ns(180.0, 40.0) == 5
        assert quantize_ns(100.0, 40.0) == 3

    def test_zero_duration(self):
        assert quantize_ns(0.0, 40.0) == 0

    def test_covers_duration(self):
        for duration in (1.0, 33.0, 119.9, 180.0, 421.0):
            for cycle in (7.0, 20.0, 40.0, 56.0):
                cycles = quantize_ns(duration, cycle)
                assert cycles * cycle >= duration - 1e-6
                if cycles:
                    assert (cycles - 1) * cycle < duration

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            quantize_ns(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            quantize_ns(-1.0, 10.0)


class TestFormatSize:
    def test_kb_mb_bytes(self):
        assert format_size(4 * KB) == "4KB"
        assert format_size(2 * MB) == "2MB"
        assert format_size(100) == "100B"

    def test_non_integral_kb_falls_back(self):
        assert format_size(KB + 1) == "1025B"
