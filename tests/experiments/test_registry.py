"""Every registered experiment runs end to end on tiny settings."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentSettings,
    clear_grid_cache,
    list_experiments,
    run_experiment,
)

TINY = ExperimentSettings(
    trace_length=12_000, trace_names=("mu3", "rd2n4"), full=False
)


@pytest.fixture(scope="module", autouse=True)
def _clear_cache_after():
    yield
    clear_grid_cache()


class TestRegistry:
    def test_sixteen_experiments_registered(self):
        ids = list_experiments()
        assert len(ids) == 16
        assert ids[0] == "table1"
        assert "fig3_4" in ids and "sec6" in ids and "scaling" in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig9_9")


@pytest.mark.parametrize("experiment_id", [
    "table1", "table2", "fig3_1", "fig3_2", "fig3_3", "fig3_4",
    "fig4_1", "fig4_2", "fig4_345", "fig5_1", "fig5_2", "fig5_3",
    "fig5_4", "table3", "sec6", "scaling",
])
def test_experiment_runs_and_reports(experiment_id):
    result = run_experiment(experiment_id, TINY)
    assert result.experiment_id == experiment_id
    assert result.text.strip()
    assert result.data
    assert str(result).startswith(f"== {experiment_id}")


class TestTable2Exactness:
    def test_no_mismatches_against_paper(self):
        result = run_experiment("table2", TINY)
        assert result.data["mismatches"] == []
