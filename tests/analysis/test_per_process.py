"""Per-process profiling of multiprogrammed traces."""

import pytest

from repro.analysis.per_process import (
    ProcessProfile,
    process_table,
    profile_processes,
)
from repro.errors import AnalysisError
from repro.sim.config import baseline_config
from repro.trace.record import RefKind, Trace
from repro.units import KB

I, L = int(RefKind.IFETCH), int(RefKind.LOAD)


class TestProfiles:
    def test_every_process_profiled(self, mu3_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        profiles = profile_processes(mu3_small, config)
        assert {p.pid for p in profiles} == set(
            mu3_small.pids.tolist()
        )
        assert sum(p.refs for p in profiles) == \
            len(mu3_small) - mu3_small.warm_boundary

    def test_multiprogramming_tax_nonnegative_overall(self, mu3_small):
        """Sharing a small cache cannot help on aggregate: the summed
        shared misses exceed the summed private misses."""
        config = baseline_config(cache_size_bytes=2 * KB)
        profiles = profile_processes(mu3_small, config)
        shared = sum(p.read_misses_shared for p in profiles)
        private = sum(p.read_misses_private for p in profiles)
        assert shared >= private

    def test_private_equals_shared_for_lone_process(self):
        refs = [(I, i % 64) for i in range(500)]
        trace = Trace(
            [k for k, _ in refs], [a for _, a in refs], [7] * len(refs),
        )
        config = baseline_config(cache_size_bytes=2 * KB)
        (profile,) = profile_processes(trace, config)
        assert profile.read_misses_shared == profile.read_misses_private
        assert profile.multiprogramming_tax == 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            profile_processes(
                Trace([], []), baseline_config(cache_size_bytes=2 * KB)
            )


class TestTable:
    def test_renders(self):
        profiles = [
            ProcessProfile(pid=1, refs=100, reads=80,
                           read_misses_shared=8, read_misses_private=4),
        ]
        text = process_table(profiles)
        assert "MP tax" in text and "0.05" in text
