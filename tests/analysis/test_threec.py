"""3C miss classification."""

import pytest

from repro.analysis.threec import (
    ThreeCBreakdown,
    _FullyAssociativeLRU,
    classify_read_misses,
    conflict_removed_by_assoc,
)
from repro.core.geometry import CacheGeometry
from repro.errors import AnalysisError
from repro.trace.record import RefKind, Trace
from repro.units import KB

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def trace_of(refs, warm=0):
    kinds = [k for k, _ in refs]
    addrs = [a for _, a in refs]
    return Trace(kinds, addrs, [1] * len(refs), warm_boundary=warm)


def tiny_geometry(assoc=1, blocks=4):
    return CacheGeometry(
        size_bytes=blocks * 16, block_words=4, assoc=assoc
    )


class TestFALRU:
    def test_eviction_order(self):
        fa = _FullyAssociativeLRU(2)
        assert not fa.access((1, 1))
        assert not fa.access((1, 2))
        assert fa.access((1, 1))       # refresh 1; 2 becomes LRU
        assert not fa.access((1, 3))   # evicts 2
        assert fa.access((1, 1))
        assert not fa.access((1, 2))

    def test_capacity_validated(self):
        with pytest.raises(AnalysisError):
            _FullyAssociativeLRU(0)


class TestClassification:
    def test_first_touches_are_compulsory(self):
        breakdown = classify_read_misses(
            trace_of([(L, 0), (L, 16), (L, 32)]), tiny_geometry()
        )
        assert breakdown.compulsory == 3
        assert breakdown.capacity == 0
        assert breakdown.conflict == 0

    def test_conflict_identified(self):
        # Two blocks aliasing in a 4-block direct-mapped cache (stride =
        # cache size in words = 16): FA-LRU of 4 blocks holds both.
        refs = [(L, 0), (L, 64)] * 4
        breakdown = classify_read_misses(trace_of(refs), tiny_geometry())
        assert breakdown.compulsory == 2
        assert breakdown.conflict == 6
        assert breakdown.capacity == 0

    def test_capacity_identified(self):
        # Cycle through 5 distinct blocks in a 4-block cache: FA-LRU
        # also misses every time (LRU worst case).
        refs = [(L, 16 * i) for i in range(5)] * 3
        breakdown = classify_read_misses(trace_of(refs), tiny_geometry())
        assert breakdown.compulsory == 5
        assert breakdown.capacity == 10
        assert breakdown.conflict == 0

    def test_total_matches_real_cache_misses(self):
        refs = [(L, (i * 13) % 256) for i in range(300)]
        geometry = tiny_geometry(assoc=2, blocks=8)
        breakdown = classify_read_misses(trace_of(refs), geometry)
        from repro.cache.cache import Cache
        from repro.core.policy import CachePolicy, ReplacementKind

        cache = Cache(geometry, CachePolicy(replacement=ReplacementKind.LRU))
        misses = sum(
            0 if cache.access_read(1, a).hit else 1 for _k, a in refs
        )
        assert breakdown.total_misses == misses

    def test_kind_filter(self):
        refs = [(I, 0), (L, 1024), (I, 4), (L, 1040)]
        i_only = classify_read_misses(
            trace_of(refs), tiny_geometry(), kinds=(RefKind.IFETCH,)
        )
        assert i_only.n_reads == 2

    def test_stores_disturb_but_are_not_classified(self):
        # Store allocates nothing in the classifier's read accounting.
        refs = [(S, 0), (L, 0)]
        breakdown = classify_read_misses(trace_of(refs), tiny_geometry())
        assert breakdown.n_reads == 1
        # The load is not compulsory (the store touched the block), and
        # the FA model holds it, but the real no-allocate cache missed:
        # a conflict-of-policy, counted as conflict.
        assert breakdown.conflict == 1

    def test_warm_boundary_respected(self):
        # Blocks 0 and 5 land in different sets of the 4-block cache.
        refs = [(L, 0), (L, 20), (L, 0), (L, 20)]
        breakdown = classify_read_misses(
            trace_of(refs, warm=2), tiny_geometry()
        )
        assert breakdown.n_reads == 2
        assert breakdown.total_misses == 0


class TestConflictVsAssoc:
    def test_conflicts_shrink_with_ways(self, mu3_small):
        results = conflict_removed_by_assoc(
            mu3_small, size_bytes=2 * KB, assocs=(1, 2, 4)
        )
        conflicts = [results[a].conflict for a in (1, 2, 4)]
        assert conflicts[0] >= conflicts[1] >= conflicts[2] >= 0
        # Compulsory and capacity are organization-independent.
        assert len({results[a].compulsory for a in (1, 2, 4)}) == 1
        assert len({results[a].capacity for a in (1, 2, 4)}) == 1

    def test_breakdown_properties(self):
        b = ThreeCBreakdown(n_reads=100, compulsory=5, capacity=10,
                            conflict=5)
        assert b.total_misses == 20
        assert b.miss_ratio == pytest.approx(0.2)
        assert b.conflict_share == pytest.approx(0.25)
