"""Reuse-distance analysis: oracle comparison and simulator consistency."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reuse import ReuseProfile, reuse_profile
from repro.cache.cache import Cache
from repro.core.geometry import CacheGeometry
from repro.core.policy import CachePolicy, ReplacementKind
from repro.errors import AnalysisError
from repro.trace.record import RefKind, Trace

L = int(RefKind.LOAD)


def load_trace(addrs, warm=0):
    return Trace([L] * len(addrs), list(addrs), [0] * len(addrs),
                 warm_boundary=warm)


def brute_force_distances(addrs, block_words=4):
    """O(N^2) oracle: distinct blocks since last use."""
    shift = block_words.bit_length() - 1
    blocks = [a >> shift for a in addrs]
    out = []
    for i, b in enumerate(blocks):
        previous = None
        for j in range(i - 1, -1, -1):
            if blocks[j] == b:
                previous = j
                break
        if previous is None:
            out.append(None)
        else:
            out.append(len(set(blocks[previous + 1: i])))
    return out


class TestAgainstOracle:
    def test_small_hand_case(self):
        # Blocks: a b a c b a  (block_words=1)
        addrs = [0, 1, 0, 2, 1, 0]
        profile = reuse_profile(load_trace(addrs), block_words=1)
        # distances: cold, cold, 1, cold, 2, 2
        assert profile.cold == 3
        assert profile.histogram == {1: 1, 2: 2}

    @settings(max_examples=30, deadline=None)
    @given(addrs=st.lists(st.integers(0, 255), min_size=1, max_size=150))
    def test_matches_brute_force(self, addrs):
        profile = reuse_profile(load_trace(addrs), block_words=4)
        oracle = brute_force_distances(addrs, block_words=4)
        expected = {}
        cold = 0
        for d in oracle:
            if d is None:
                cold += 1
            else:
                expected[d] = expected.get(d, 0) + 1
        assert profile.cold == cold
        assert profile.histogram == expected


class TestMissRatioCurve:
    def test_matches_fully_associative_lru_simulation(self):
        rng = random.Random(9)
        addrs = [rng.randrange(4096) for _ in range(3000)]
        profile = reuse_profile(load_trace(addrs), block_words=4)
        for capacity in (4, 16, 64, 256):
            cache = Cache(
                CacheGeometry(size_bytes=capacity * 16, block_words=4,
                              assoc=capacity),
                CachePolicy(replacement=ReplacementKind.LRU),
            )
            misses = sum(
                0 if cache.access_read(0, a).hit else 1 for a in addrs
            )
            assert profile.miss_ratio_at(capacity) == pytest.approx(
                misses / len(addrs)
            )

    def test_curve_monotone_nonincreasing(self, mu3_small):
        profile = reuse_profile(mu3_small)
        curve = profile.miss_ratio_curve([8, 32, 128, 512, 2048])
        ratios = [r for _c, r in curve]
        assert ratios == sorted(ratios, reverse=True)

    def test_capacity_validated(self):
        profile = reuse_profile(load_trace([0]))
        with pytest.raises(AnalysisError):
            profile.miss_ratio_at(0)


class TestOptions:
    def test_kind_filter_counts_only_wanted(self):
        trace = Trace(
            [int(RefKind.IFETCH), L, int(RefKind.IFETCH), L],
            [0, 100, 0, 100],
            [0, 0, 0, 0],
        )
        profile = reuse_profile(trace, kinds=(RefKind.LOAD,), block_words=1)
        assert profile.n_refs == 2
        # The second load's distance still counts the intervening
        # ifetch's block (recency is updated by every reference).
        assert profile.histogram == {1: 1}

    def test_warm_boundary_counts_tail_only(self):
        addrs = [0, 4, 0, 4]
        cold_everything = reuse_profile(load_trace(addrs), block_words=4)
        warm = reuse_profile(
            load_trace(addrs, warm=2), block_words=4,
            honor_warm_boundary=True,
        )
        assert cold_everything.n_refs == 4
        assert warm.n_refs == 2
        assert warm.cold == 0  # warm-up established recency

    def test_pid_separates_blocks(self):
        trace = Trace([L, L], [0, 0], [1, 2])
        profile = reuse_profile(trace, block_words=4)
        assert profile.cold == 2

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(AnalysisError):
            reuse_profile(load_trace([0]), block_words=3)

    def test_median_distance(self):
        profile = ReuseProfile(
            histogram={1: 5, 10: 4, 100: 2}, cold=3, n_refs=14,
            block_words=4,
        )
        assert profile.median_distance == 10

    def test_median_none_when_all_cold(self):
        profile = ReuseProfile(histogram={}, cold=3, n_refs=3, block_words=4)
        assert profile.median_distance is None
