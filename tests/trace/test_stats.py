"""Trace statistics (Table 1 columns)."""

import pytest

from repro.errors import TraceError
from repro.trace.record import RefKind, Trace
from repro.trace.stats import (
    compute_stats,
    stats_table,
    unique_addresses_over_time,
)

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def sample_trace():
    return Trace(
        [I, L, I, S, I, L],
        [0, 100, 1, 100, 0, 200],
        [1, 1, 2, 2, 1, 1],
        name="sample",
        warm_boundary=2,
    )


class TestComputeStats:
    def test_counts(self):
        stats = compute_stats(sample_trace())
        assert stats.length == 6
        assert stats.n_ifetches == 3
        assert stats.n_loads == 2
        assert stats.n_stores == 1
        assert stats.n_reads == 5
        assert stats.n_processes == 2
        assert stats.warm_boundary == 2

    def test_unique_kwords(self):
        stats = compute_stats(sample_trace())
        # Unique (pid, addr): (1,0),(1,100),(2,1),(2,100),(1,200) = 5.
        assert stats.n_unique_kwords == pytest.approx(5 / 1024)

    def test_fractions(self):
        stats = compute_stats(sample_trace())
        assert stats.data_ref_fraction == pytest.approx(3 / 6)
        assert stats.store_fraction == pytest.approx(1 / 6)

    def test_empty_trace_fractions(self):
        stats = compute_stats(Trace([], []))
        assert stats.data_ref_fraction == 0.0
        assert stats.store_fraction == 0.0


class TestUniqueOverTime:
    def test_monotone_nondecreasing(self):
        trace = sample_trace()
        counts = unique_addresses_over_time(trace, n_points=3)
        assert counts == sorted(counts)
        assert counts[-1] == trace.n_unique_addresses

    def test_empty_trace(self):
        assert unique_addresses_over_time(Trace([], []), 4) == [0, 0, 0, 0]

    def test_rejects_zero_points(self):
        with pytest.raises(TraceError):
            unique_addresses_over_time(sample_trace(), 0)


class TestStatsTable:
    def test_renders_all_traces(self):
        table = stats_table([compute_stats(sample_trace())])
        assert "sample" in table
        assert "Procs" in table
