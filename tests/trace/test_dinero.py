"""Trace file IO: din and dinp formats."""

import io

import pytest

from repro.errors import TraceError
from repro.trace.dinero import read_din, round_trip_equal, write_din
from repro.trace.record import RefKind, Trace

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def sample_trace():
    return Trace([I, L, S], [0, 0x100, 0x2345], [1, 2, 3], name="t")


class TestRoundTrip:
    def test_dinp_round_trips_everything(self):
        trace = sample_trace()
        buffer = io.StringIO()
        write_din(trace, buffer, with_pids=True)
        buffer.seek(0)
        back = read_din(buffer)
        assert round_trip_equal(trace, back)

    def test_din_drops_pids(self):
        trace = sample_trace()
        buffer = io.StringIO()
        write_din(trace, buffer)
        buffer.seek(0)
        back = read_din(buffer)
        assert (back.pids == 0).all()
        assert (back.addrs == trace.addrs).all()

    def test_file_path_io(self, tmp_path):
        path = str(tmp_path / "trace.din")
        write_din(sample_trace(), path, with_pids=True)
        back = read_din(path, name="disk")
        assert back.name == "disk"
        assert round_trip_equal(sample_trace(), back)


class TestFormat:
    def test_byte_addresses_on_disk(self):
        buffer = io.StringIO()
        write_din(Trace([L], [3]), buffer)
        # Word 3 is byte address 0xc.
        assert buffer.getvalue().strip() == "0 c"

    def test_labels(self):
        buffer = io.StringIO()
        write_din(sample_trace(), buffer)
        labels = [line.split()[0] for line in buffer.getvalue().splitlines()]
        assert labels == ["2", "0", "1"]  # ifetch, read, write

    def test_comments_and_blanks_skipped(self):
        back = read_din(io.StringIO("# header\n\n2 10\n"))
        assert len(back) == 1
        assert back[0].kind is RefKind.IFETCH


class TestErrors:
    @pytest.mark.parametrize("line", [
        "2",                # too few fields
        "2 10 1 9",         # too many fields
        "9 10",             # unknown label
        "2 zz",             # unparsable address
        "2 -4",             # negative address
    ])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(TraceError):
            read_din(io.StringIO(line + "\n"))

    def test_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.din"
        path.write_text("2 10\n2 10\nxx yy\n")
        with pytest.raises(TraceError, match=r"bad\.din.*line 3"):
            read_din(str(path))

    def test_line_numbers_are_one_based(self):
        with pytest.raises(TraceError, match="line 1"):
            read_din(io.StringIO("9 10\n2 20\n"))

    def test_truncated_final_line_reported(self, tmp_path):
        # A crash mid-write leaves the last record cut off with no
        # terminating newline; that must be diagnosed as truncation.
        path = tmp_path / "cut.din"
        path.write_text("2 10\n1 20\n2")
        with pytest.raises(TraceError, match=r"cut\.din.*truncated final "
                                             r"line 3"):
            read_din(str(path))

    def test_truncated_hex_field_reported(self):
        with pytest.raises(TraceError, match="truncated final line 2"):
            read_din(io.StringIO("2 10\n1 2zz"))

    def test_unterminated_but_parsable_final_line_accepted(self):
        back = read_din(io.StringIO("2 10\n1 20"))
        assert len(back) == 2

    def test_malformed_terminated_line_is_not_truncation(self):
        with pytest.raises(TraceError) as excinfo:
            read_din(io.StringIO("2 zz\n"))
        assert "truncated" not in str(excinfo.value)
