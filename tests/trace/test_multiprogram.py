"""Multiprogrammed interleaving and warm-prefix construction."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.multiprogram import interleave, warm_prefix, with_warm_prefix
from repro.trace.record import Trace
from repro.trace.workloads import make_program


def make_programs(n=3, seed=0):
    presets = ["ccom", "emacs", "troff", "rsim", "spice"]
    return [
        make_program(presets[i % len(presets)], pid=i + 1, seed=seed + i)
        for i in range(n)
    ]


class TestInterleave:
    def test_exact_length(self):
        trace = interleave(make_programs(), length=5000, seed=1)
        assert len(trace) == 5000

    def test_all_processes_appear(self):
        trace = interleave(
            make_programs(3), length=30_000, mean_switch_interval=2000,
            seed=2,
        )
        assert trace.n_processes == 3

    def test_context_switches_happen(self):
        trace = interleave(
            make_programs(2), length=20_000, mean_switch_interval=1000,
            seed=3,
        )
        pids = trace.pids
        switches = int((pids[1:] != pids[:-1]).sum())
        assert switches >= 5

    def test_random_scheduler_changes_process(self):
        trace = interleave(
            make_programs(3), length=20_000, mean_switch_interval=500,
            scheduler="random", seed=4,
        )
        assert trace.n_processes == 3

    def test_rejects_no_programs(self):
        with pytest.raises(ConfigurationError):
            interleave([], length=100)

    def test_rejects_bad_scheduler(self):
        with pytest.raises(ConfigurationError):
            interleave(make_programs(1), length=100, scheduler="magic")

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigurationError):
            interleave(make_programs(1), length=0)


class TestWarmPrefix:
    def test_prefix_contains_each_unique_once(self):
        history = interleave(make_programs(2), length=5000, seed=5)
        prefix = warm_prefix(history)
        combined = set(
            zip(prefix.pids.tolist(), prefix.addrs.tolist())
        )
        assert len(prefix) == len(combined) == history.n_unique_addresses

    def test_prefix_preserves_per_process_lru_order(self):
        history = interleave(make_programs(2), length=3000, seed=6)
        prefix = warm_prefix(history)
        # Within one pid, prefix order == order of last use in history.
        last_use = {}
        for i, (a, p) in enumerate(
            zip(history.addrs.tolist(), history.pids.tolist())
        ):
            last_use[(p, a)] = i
        for pid in set(prefix.pids.tolist()):
            ordered = [
                last_use[(p, a)]
                for a, p in zip(prefix.addrs.tolist(), prefix.pids.tolist())
                if p == pid
            ]
            assert ordered == sorted(ordered)

    def test_empty_history_rejected(self):
        with pytest.raises(ConfigurationError):
            warm_prefix(Trace([], []))


class TestWithWarmPrefix:
    def test_warm_boundary_is_prefix_length(self):
        history = interleave(make_programs(2), length=2000, seed=7)
        body = interleave(make_programs(2), length=4000, seed=8)
        combined = with_warm_prefix(body, history)
        assert combined.warm_boundary == history.n_unique_addresses
        assert len(combined) == combined.warm_boundary + len(body)

    def test_warm_start_makes_large_caches_valid(self):
        """The paper's property: prefix + body leaves a large cache warm,
        so body-measured misses are far lower than a cold body run."""
        from repro.sim.config import baseline_config
        from repro.sim.fastpath import fast_simulate
        from repro.units import MB

        programs = make_programs(2, seed=9)
        history = interleave(programs, length=8000, seed=9)
        body = interleave(programs, length=8000, seed=10)
        warmed = with_warm_prefix(body, history)
        cold = body.with_warm_boundary(0)
        config = baseline_config(cache_size_bytes=2 * MB)
        warm_stats = fast_simulate(config, warmed)
        cold_stats = fast_simulate(config, cold)
        assert warm_stats.read_miss_ratio < cold_stats.read_miss_ratio
