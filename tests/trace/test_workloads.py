"""Workload presets and program generation."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.record import RefKind
from repro.trace.synthetic import STACK_BASE
from repro.trace.workloads import (
    PRESETS,
    Program,
    WorkloadSpec,
    default_layout,
    make_program,
)

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


class TestPresets:
    def test_all_presets_instantiate(self):
        for name in PRESETS:
            program = make_program(name, pid=1, seed=0)
            kinds, addrs = program.generate(200)
            assert len(kinds) == len(addrs) >= 200

    def test_mixtures_sum_to_at_most_one(self):
        for name, spec in PRESETS.items():
            assert spec.p_sequential + spec.p_reuse <= 1.0, name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_program("nonesuch", pid=1, seed=0)

    def test_scaled_shrinks_footprints(self):
        spec = PRESETS["spice"].scaled(0.25)
        assert spec.code_words == PRESETS["spice"].code_words // 4
        assert spec.init_words == PRESETS["spice"].init_words // 4

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            PRESETS["spice"].scaled(0.0)

    def test_spec_validates_probabilities(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", p_data=1.5)


class TestProgramGeneration:
    def test_reference_mix_tracks_spec(self):
        program = make_program("fortran_compile", pid=1, seed=1)
        kinds, _addrs = program.generate(20_000)
        n = len(kinds)
        ifetch_frac = kinds.count(I) / n
        spec = PRESETS["fortran_compile"]
        expected_ifetch = 1.0 / (1.0 + spec.p_data)
        assert abs(ifetch_frac - expected_ifetch) < 0.05

    def test_data_follows_ifetch(self):
        program = make_program("ccom", pid=1, seed=2)
        kinds, _ = program.generate(2000)
        for prev, cur in zip(kinds, kinds[1:]):
            if cur in (L, S):
                assert prev == I, "data references pair with an ifetch"

    def test_state_persists_across_chunks(self):
        a = make_program("emacs", pid=1, seed=3)
        b = make_program("emacs", pid=1, seed=3)
        whole_kinds, whole_addrs = a.generate(4000)
        part_kinds, part_addrs = [], []
        while len(part_kinds) < 4000:
            k, ad = b.generate(500)
            part_kinds.extend(k)
            part_addrs.extend(ad)
        assert whole_kinds[:4000] == part_kinds[:4000]
        assert whole_addrs[:4000] == part_addrs[:4000]

    def test_zeroing_programs_start_with_stores(self):
        program = make_program("egrep", pid=1, seed=4)
        kinds, _ = program.generate(400)
        data_kinds = [k for k in kinds[:200] if k != I]
        assert data_kinds and all(k == S for k in data_kinds)

    def test_pid_affects_layout(self):
        a = default_layout(1)
        b = default_layout(2)
        assert a.data != b.data

    def test_stack_addresses_present(self):
        program = make_program("ccom", pid=1, seed=5)
        _, addrs = program.generate(20_000)
        assert any(addr >= STACK_BASE for addr in addrs)
