"""The eight-trace suite."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.suite import (
    ALL_TRACES,
    RISC_TRACES,
    TRACE_PROGRAMS,
    VAX_TRACES,
    VAX_WARM_FRACTION,
    build_suite,
    build_trace,
)


class TestComposition:
    def test_eight_traces(self):
        assert len(ALL_TRACES) == 8
        assert set(VAX_TRACES) | set(RISC_TRACES) == set(ALL_TRACES)

    def test_process_counts_follow_table1(self):
        # Table 1: mu3 has 7 processes, mu6 11, mu10 14, savec 6;
        # rd1n3 3, rd2n4 4, rd1n5 5, rd2n7 7.
        expected = {
            "mu3": 7, "mu6": 11, "mu10": 14, "savec": 6,
            "rd1n3": 3, "rd2n4": 4, "rd1n5": 5, "rd2n7": 7,
        }
        for name, count in expected.items():
            assert len(TRACE_PROGRAMS[name]) == count


class TestBuildTrace:
    def test_vax_trace_warm_fraction(self):
        trace = build_trace("mu3", length=10_000)
        assert len(trace) == 10_000
        assert trace.warm_boundary == int(10_000 * VAX_WARM_FRACTION)

    def test_risc_trace_has_prefix(self):
        trace = build_trace("rd1n3", length=10_000)
        assert len(trace) > 10_000  # prefix prepended
        assert trace.warm_boundary == len(trace) - 10_000

    def test_deterministic(self):
        a = build_trace("savec", length=5000, seed=11)
        b = build_trace("savec", length=5000, seed=11)
        assert (a.addrs == b.addrs).all()
        assert (a.kinds == b.kinds).all()

    def test_seed_changes_stream(self):
        a = build_trace("savec", length=5000, seed=1)
        b = build_trace("savec", length=5000, seed=2)
        assert not (a.addrs == b.addrs).all()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_trace("mu99")

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ConfigurationError):
            build_trace("mu3", length=0)


class TestBuildSuite:
    def test_subset_selection(self):
        suite = build_suite(length=4000, names=["mu3", "rd2n4"])
        assert set(suite) == {"mu3", "rd2n4"}

    def test_caching_returns_same_object(self):
        a = build_suite(length=4000, names=["mu3"])["mu3"]
        b = build_suite(length=4000, names=["mu3"])["mu3"]
        assert a is b

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_suite(names=["bogus"])
