"""Synthetic address-stream models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.trace.synthetic import (
    DATA_BASE,
    STACK_BASE,
    TEXT_BASE,
    DataModel,
    InstructionModel,
    SegmentLayout,
    ZeroingSweep,
    _RecencyRing,
)


class TestRecencyRing:
    def test_remember_and_sample(self):
        ring = _RecencyRing(4, 1.0, 2.0, 0.5, 0.3, random.Random(0))
        for item in (10, 20, 30):
            ring.remember(item)
        assert ring.sample() in (10, 20, 30)

    def test_wraps_at_capacity(self):
        ring = _RecencyRing(2, 1.0, 2.0, 0.5, 0.3, random.Random(0))
        for item in range(5):
            ring.remember(item)
        assert len(ring) == 2
        assert ring.sample() in (3, 4)

    def test_empty_sample_rejected(self):
        ring = _RecencyRing(2, 1.0, 2.0, 0.5, 0.3, random.Random(0))
        with pytest.raises(ConfigurationError):
            ring.sample()

    def test_bad_mixture_rejected(self):
        with pytest.raises(ConfigurationError):
            _RecencyRing(2, 1.0, 2.0, 0.7, 0.7, random.Random(0))


class TestInstructionModel:
    def test_addresses_within_segment(self):
        model = InstructionModel(code_words=1024, rng=random.Random(1))
        for _ in range(5000):
            addr = model.next_address()
            assert TEXT_BASE <= addr < TEXT_BASE + 1024

    def test_deterministic_given_seed(self):
        a = InstructionModel(code_words=1024, rng=random.Random(7))
        b = InstructionModel(code_words=1024, rng=random.Random(7))
        assert [a.next_address() for _ in range(500)] == [
            b.next_address() for _ in range(500)
        ]

    def test_sequentiality(self):
        # A loop-structured PC is mostly sequential: the majority of
        # address deltas are +1.
        model = InstructionModel(code_words=4096, rng=random.Random(2))
        addrs = [model.next_address() for _ in range(5000)]
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        assert sum(d == 1 for d in deltas) / len(deltas) > 0.7

    def test_rejects_tiny_code(self):
        with pytest.raises(ConfigurationError):
            InstructionModel(code_words=4)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            InstructionModel(code_words=64, p_far_jump=1.5)


class TestDataModel:
    def test_addresses_within_segments(self):
        model = DataModel(data_words=4096, rng=random.Random(1))
        span = 1
        while span < 4096:
            span <<= 1
        for _ in range(5000):
            addr = model.next_address()
            in_data = DATA_BASE <= addr < DATA_BASE + span
            in_stack = STACK_BASE <= addr < STACK_BASE + model.stack_span
            assert in_data or in_stack

    def test_deterministic_given_seed(self):
        a = DataModel(data_words=4096, rng=random.Random(5))
        b = DataModel(data_words=4096, rng=random.Random(5))
        assert [a.next_address() for _ in range(500)] == [
            b.next_address() for _ in range(500)
        ]

    def test_reuse_dominates(self):
        # Most references revisit already-touched words.
        model = DataModel(data_words=65536, rng=random.Random(3))
        seen = set()
        revisits = 0
        n = 8000
        for _ in range(n):
            addr = model.next_address()
            if addr in seen:
                revisits += 1
            seen.add(addr)
        assert revisits / n > 0.5

    def test_init_sweep_runs_first(self):
        model = DataModel(
            data_words=4096, init_words=64, p_stack=0.0,
            rng=random.Random(4),
        )
        assert model.in_init
        init_addrs = [model.next_address() for _ in range(64)]
        assert not model.in_init
        # The sweep is ascending in logical space; scattered addresses
        # are still unique.
        assert len(set(init_addrs)) == 64

    def test_scatter_is_bijective(self):
        model = DataModel(data_words=4096, rng=random.Random(0))
        space = model._cluster_count << model._cluster_bits
        mapped = {model._scatter(a) for a in range(space)}
        assert len(mapped) == space
        assert min(mapped) >= 0 and max(mapped) < space

    def test_scatter_preserves_intra_cluster_adjacency(self):
        model = DataModel(data_words=4096, rng=random.Random(0))
        cluster = 1 << model._cluster_bits
        base = model._scatter(0)
        for offset in range(1, cluster):
            assert model._scatter(offset) == base + offset

    def test_rejects_bad_mixture(self):
        with pytest.raises(ConfigurationError):
            DataModel(data_words=64, p_sequential=0.6, p_reuse=0.6)

    def test_rejects_oversized_init(self):
        with pytest.raises(ConfigurationError):
            DataModel(data_words=64, init_words=100)


class TestZeroingSweep:
    def test_sequential_and_exhausts(self):
        sweep = ZeroingSweep(4, base=100)
        assert [sweep.next_address() for _ in range(4)] == [100, 101, 102, 103]
        assert sweep.exhausted
        with pytest.raises(ConfigurationError):
            sweep.next_address()

    def test_zero_span_is_immediately_exhausted(self):
        assert ZeroingSweep(0).exhausted

    def test_rejects_negative_span(self):
        with pytest.raises(ConfigurationError):
            ZeroingSweep(-1)


class TestSegmentLayout:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            SegmentLayout(text=100, data=50, stack=200)

    def test_defaults_ordered(self):
        layout = SegmentLayout()
        assert layout.text < layout.data < layout.stack
