"""Trace container and reference records."""

import pytest

from repro.errors import TraceError
from repro.trace.record import Reference, RefKind, Trace


class TestRefKind:
    def test_reads_are_loads_and_ifetches(self):
        assert RefKind.IFETCH.is_read
        assert RefKind.LOAD.is_read
        assert not RefKind.STORE.is_read

    def test_data_kinds(self):
        assert RefKind.LOAD.is_data
        assert RefKind.STORE.is_data
        assert not RefKind.IFETCH.is_data


class TestReference:
    def test_rejects_negative_address(self):
        with pytest.raises(TraceError):
            Reference(RefKind.LOAD, -1)

    def test_rejects_negative_pid(self):
        with pytest.raises(TraceError):
            Reference(RefKind.LOAD, 0, pid=-2)


class TestTraceConstruction:
    def test_from_references_round_trip(self):
        refs = [
            Reference(RefKind.IFETCH, 10, 1),
            Reference(RefKind.STORE, 20, 2),
        ]
        trace = Trace.from_references(refs, name="t")
        assert list(trace) == refs

    def test_default_pids_are_zero(self):
        trace = Trace([0, 1], [5, 6])
        assert trace[0].pid == 0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TraceError):
            Trace([0, 1], [5])

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceError):
            Trace([7], [5])

    def test_rejects_negative_address(self):
        with pytest.raises(TraceError):
            Trace([0], [-5])

    def test_rejects_bad_warm_boundary(self):
        with pytest.raises(TraceError):
            Trace([0], [5], warm_boundary=2)

    def test_concatenate(self):
        a = Trace([0], [1])
        b = Trace([1], [2])
        combined = Trace.concatenate([a, b], name="ab")
        assert len(combined) == 2
        assert combined[1].kind is RefKind.LOAD

    def test_concatenate_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace.concatenate([])


class TestTraceViews:
    def test_slice(self):
        trace = Trace([0, 1, 2], [1, 2, 3], warm_boundary=2)
        part = trace.slice(1, 3)
        assert len(part) == 2
        # The warm boundary falls inside the window: one warm ref left.
        assert part.warm_boundary == 1

    def test_slice_warm_boundary_before_window(self):
        trace = Trace([0, 1, 2, 0], [1, 2, 3, 4], warm_boundary=1)
        assert trace.slice(2, 4).warm_boundary == 0

    def test_slice_warm_boundary_past_window_clamps(self):
        # The whole window sits inside the warm prefix — every ref of
        # the slice is warm, and the boundary must clamp to its length
        # (an unclamped carry-over used to violate the Trace invariant).
        trace = Trace([0, 1, 2, 0], [1, 2, 3, 4], warm_boundary=3)
        part = trace.slice(0, 2)
        assert part.warm_boundary == 2
        assert part.warm_boundary <= len(part)

    def test_slice_then_with_warm_boundary_round_trip(self):
        trace = Trace([0, 1, 2, 0], [1, 2, 3, 4], warm_boundary=2)
        part = trace.slice(1, 4).with_warm_boundary(0)
        assert part.warm_boundary == 0
        assert len(part) == 3

    def test_slice_keeps_name_override(self):
        trace = Trace([0, 1, 2], [1, 2, 3], name="t")
        assert trace.slice(0, 2, name="t@0").name == "t@0"

    def test_slice_bounds_checked(self):
        with pytest.raises(TraceError):
            Trace([0], [1]).slice(0, 2)

    def test_getitem_rejects_slices(self):
        with pytest.raises(TypeError):
            Trace([0], [1])[0:1]

    def test_with_warm_boundary(self):
        trace = Trace([0, 1], [1, 2]).with_warm_boundary(1)
        assert trace.warm_boundary == 1

    def test_with_name(self):
        assert Trace([0], [1]).with_name("x").name == "x"

    def test_as_lists(self):
        trace = Trace([0, 2], [1, 2], [3, 4])
        kinds, addrs, pids = trace.as_lists()
        assert kinds == [0, 2] and addrs == [1, 2] and pids == [3, 4]


class TestAggregates:
    def test_kind_counts(self):
        trace = Trace([0, 0, 1, 2], [1, 2, 3, 4])
        assert trace.n_ifetches == 2
        assert trace.n_loads == 1
        assert trace.n_stores == 1
        assert trace.n_reads == 3

    def test_unique_addresses_respect_pid(self):
        trace = Trace([1, 1], [100, 100], [1, 2])
        assert trace.n_unique_addresses == 2

    def test_n_processes(self):
        trace = Trace([1, 1, 1], [1, 2, 3], [5, 5, 9])
        assert trace.n_processes == 2

    def test_empty_trace(self):
        trace = Trace([], [])
        assert trace.n_unique_addresses == 0
        assert trace.n_processes == 0
