"""Benchmark-history store, noise-band diff gate, and bench CLI.

The load-bearing guarantees under test:

* a :class:`BenchRecord` round-trips through its sealed document, and
  any tampering (checksum, schema marker, field types) surfaces as
  :exc:`CorruptResultError`, never as a silently different record;
* the JSONL store appends atomically, loads in order, and names the
  offending line on corruption;
* all four raw CI ``BENCH_*.json`` shapes ingest into common records
  with curated gating directions, and unknown suites gate only on
  unmistakable naming conventions;
* the diff gate flags a 10% slowdown on a quiet baseline (the issue's
  acceptance bar), tolerates bit-identical reruns, never gates ``info``
  metrics or metrics without a baseline, and credits improvements;
* the ``repro-sim bench`` subcommands wire all of it together.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, CorruptResultError
from repro.sim.benchhistory import (
    BENCH_SUITES,
    BenchHistory,
    BenchRecord,
    DiffPolicy,
    diff_history,
    host_fingerprint,
    ingest_raw_bench,
    mad,
    median,
    record_from_dict,
    record_to_dict,
    render_diff,
    run_bench_suites,
    sparkline,
)


def _rec(value, commit, metric="wall_s", direction="lower", suite="s",
         **kwargs):
    return BenchRecord(
        suite=suite, metric=metric, value=value, unit="s",
        direction=direction, commit=commit, host="h", **kwargs
    )


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
class TestBenchRecord:
    def test_round_trip(self):
        record = _rec(1.25, "abc", repetitions=5)
        payload = json.loads(json.dumps(record_to_dict(record)))
        assert record_from_dict(payload) == record

    def test_document_is_sealed(self):
        doc = record_to_dict(_rec(1.0, "abc"))
        doc["value"] = 0.5
        with pytest.raises(CorruptResultError, match="checksum"):
            record_from_dict(doc)

    def test_schema_marker_is_enforced(self):
        doc = record_to_dict(_rec(1.0, "abc"))
        doc["schema"] = 99
        with pytest.raises(CorruptResultError, match="schema"):
            record_from_dict(doc)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(CorruptResultError, match="expected object"):
            record_from_dict(["not", "a", "record"])

    def test_boolean_value_rejected(self):
        doc = record_to_dict(_rec(1.0, "abc"))
        doc["value"] = True
        doc["checksum"] = ""
        from repro.sim.campaign import payload_checksum
        doc["checksum"] = payload_checksum(
            {k: v for k, v in doc.items() if k != "checksum"}
        )
        with pytest.raises(CorruptResultError, match="not a number"):
            record_from_dict(doc)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BenchRecord(suite="", metric="m", value=1.0)
        with pytest.raises(ConfigurationError):
            BenchRecord(suite="s", metric="m", value=1.0,
                        direction="sideways")
        with pytest.raises(ConfigurationError):
            BenchRecord(suite="s", metric="m", value=1.0, repetitions=0)

    def test_host_fingerprint_is_stable(self):
        assert host_fingerprint() == host_fingerprint()
        assert "py" in host_fingerprint()

    def test_commit_env_override(self, monkeypatch):
        from repro.sim.benchhistory import current_commit

        monkeypatch.setenv("REPRO_BENCH_COMMIT", "deadbeef")
        assert current_commit() == "deadbeef"


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class TestBenchHistory:
    def test_append_and_load_in_order(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        assert history.load() == []
        history.append([_rec(1.0, "a"), _rec(2.0, "a", metric="other")])
        history.append([_rec(1.1, "b")])
        records = history.load()
        assert [r.value for r in records] == [1.0, 2.0, 1.1]
        assert [r.commit for r in records] == ["a", "a", "b"]

    def test_empty_append_writes_nothing(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        assert history.append([]) == 0
        assert not history.path.exists()

    def test_series_groups_per_metric(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([_rec(1.0, "a"), _rec(2.0, "a", metric="other"),
                        _rec(1.2, "b")])
        series = history.series()
        assert [r.value for r in series[("s", "wall_s")]] == [1.0, 1.2]
        assert [r.value for r in series[("s", "other")]] == [2.0]

    def test_corrupt_line_is_named(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([_rec(1.0, "a")])
        with open(history.path, "a", encoding="utf-8") as handle:
            handle.write("{torn…\n")
        with pytest.raises(CorruptResultError, match=r"hist\.jsonl:2"):
            history.load()

    def test_tampered_line_is_named(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([_rec(1.0, "a"), _rec(2.0, "b")])
        lines = history.path.read_text().splitlines()
        lines[1] = lines[1].replace("2.0", "3.0")
        history.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CorruptResultError, match=r"hist\.jsonl:2"):
            history.load()

    def test_append_refuses_to_bury_corruption(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.path.write_text("not json\n")
        with pytest.raises(CorruptResultError):
            history.append([_rec(1.0, "a")])
        assert history.path.read_text() == "not json\n"

    def test_writes_go_through_injected_writer(self, tmp_path):
        calls = []

        def spy(path, text):
            calls.append(path)
            path.write_text(text, encoding="utf-8")

        history = BenchHistory(tmp_path / "hist.jsonl", writer=spy)
        history.append([_rec(1.0, "a")])
        assert calls == [history.path]


# ----------------------------------------------------------------------
# Raw-document ingestion
# ----------------------------------------------------------------------
class TestIngestRawBench:
    def test_all_four_ci_shapes(self):
        raws = {
            "telemetry_smoke": {
                "bench": "telemetry_smoke", "python": "3.12",
                "runs": 8, "refs_per_sec_p10": 1e5,
                "refs_per_sec_p50": 2e5, "refs_per_sec_p90": 3e5,
                "total_wall_s": 2.0,
            },
            "passcache_warm_vs_cold": {
                "bench": "passcache_warm_vs_cold", "python": "3.12",
                "passes": 8, "cold_s": 4.0, "warm_s": 0.4,
                "speedup": 10.0, "hits": 8, "bytes_on_disk": 123456,
            },
            "replay_kernel_vs_scalar": {
                "bench": "replay_kernel_vs_scalar", "python": "3.12",
                "grid": [16, 8], "streams": 32, "replay_jobs": 4,
                "scalar_s": 9.0, "batch_serial_s": 3.0, "batch_s": 1.0,
                "speedup_serial": 3.0, "speedup": 9.0,
                "vectorized_events": 1000, "scalar_events": 100,
            },
            "workqueue_chaos": {
                "bench": "workqueue_chaos", "python": "3.12",
                "jobs": 24, "workers_killed": 2, "leases_reclaimed": 2,
                "max_lease_epoch": 2, "bit_identical": True,
            },
        }
        for name, raw in raws.items():
            records = ingest_raw_bench(raw, commit="c", host="h")
            assert records, name
            assert all(r.suite == name for r in records)
            by_metric = {r.metric: r for r in records}
            # meta keys and non-numerics never become records
            assert "bench" not in by_metric
            assert "python" not in by_metric
            assert "grid" not in by_metric
        # curated directions gate the right way
        tele = {r.metric: r for r in ingest_raw_bench(
            raws["telemetry_smoke"], commit="c")}
        assert tele["total_wall_s"].direction == "lower"
        assert tele["refs_per_sec_p50"].direction == "higher"
        assert tele["runs"].direction == "info"
        fabric = {r.metric: r for r in ingest_raw_bench(
            raws["workqueue_chaos"], commit="c")}
        assert fabric["bit_identical"].value == 1.0
        assert fabric["bit_identical"].direction == "info"

    def test_unknown_suite_gates_conservatively(self):
        records = {r.metric: r for r in ingest_raw_bench(
            {"bench": "novel", "wall_s": 1.0, "refs_per_sec": 2.0,
             "speedup": 3.0, "widget_count": 7},
            commit="c",
        )}
        assert records["wall_s"].direction == "lower"
        assert records["refs_per_sec"].direction == "higher"
        assert records["speedup"].direction == "higher"
        assert records["widget_count"].direction == "info"

    def test_suite_override_and_missing_name(self):
        records = ingest_raw_bench({"x_s": 1.0}, suite="forced")
        assert records[0].suite == "forced"
        with pytest.raises(CorruptResultError, match="'bench'"):
            ingest_raw_bench({"x_s": 1.0})

    def test_no_numeric_metrics_rejected(self):
        with pytest.raises(CorruptResultError, match="no numeric"):
            ingest_raw_bench({"bench": "empty", "python": "3.12"})


# ----------------------------------------------------------------------
# Noise-band math and the gate
# ----------------------------------------------------------------------
class TestNoiseBand:
    def test_median_and_mad(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0
        with pytest.raises(ConfigurationError):
            median([])

    def test_mad_resists_one_outlier(self):
        quiet = [1.0, 1.01, 0.99, 1.0]
        assert mad(quiet + [10.0]) == pytest.approx(0.01, abs=1e-9)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DiffPolicy(mad_scale=0.0)
        with pytest.raises(ConfigurationError):
            DiffPolicy(min_baseline=0)

    def test_tolerance_floors(self):
        policy = DiffPolicy(mad_scale=4.0, rel_floor=0.05)
        # identical baseline: MAD is zero, the relative floor holds
        assert policy.tolerance([1.0, 1.0, 1.0]) == pytest.approx(0.05)
        # zero median: the absolute floor holds
        assert policy.tolerance([0.0, 0.0]) == pytest.approx(1e-9)


class TestDiffHistory:
    def test_ten_percent_slowdown_is_a_regression(self):
        records = [_rec(1.0, c) for c in ("a", "b", "c")]
        records.append(_rec(1.10, "cand"))
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "regression"
        assert delta.baseline_n == 3

    def test_ten_percent_throughput_drop_is_a_regression(self):
        records = [
            _rec(100.0, c, metric="refs_per_sec", direction="higher")
            for c in ("a", "b", "c")
        ]
        records.append(
            _rec(90.0, "cand", metric="refs_per_sec", direction="higher")
        )
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "regression"

    def test_bit_identical_rerun_passes(self):
        records = [_rec(1.0, "a"), _rec(1.0, "cand")]
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "ok"

    def test_improvement_is_credited(self):
        records = [_rec(1.0, c) for c in ("a", "b", "c")]
        records.append(_rec(0.5, "cand"))
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "improved"

    def test_within_band_jitter_is_ok(self):
        records = [_rec(1.0, c) for c in ("a", "b", "c")]
        records.append(_rec(1.04, "cand"))
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "ok"

    def test_noisy_baseline_widens_the_band(self):
        # Baseline MAD 0.1 → tolerance 0.4; a 30% move stays ok where a
        # quiet baseline would have flagged it.
        records = [_rec(v, c) for v, c in
                   zip([0.9, 1.0, 1.1, 0.85, 1.15], "abcde")]
        records.append(_rec(1.3, "cand"))
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "ok"

    def test_info_metrics_never_gate(self):
        records = [
            _rec(1.0, "a", metric="jobs", direction="info"),
            _rec(99.0, "cand", metric="jobs", direction="info"),
        ]
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "info"

    def test_no_baseline_reports_new(self):
        (delta,) = diff_history([_rec(1.0, "cand")], commit="cand")
        assert delta.status == "new"

    def test_min_baseline_defers_gating(self):
        records = [_rec(1.0, "a"), _rec(2.0, "cand")]
        (delta,) = diff_history(
            records, commit="cand", policy=DiffPolicy(min_baseline=3)
        )
        assert delta.status == "new"

    def test_default_commit_is_the_last_records(self):
        records = [_rec(1.0, "a"), _rec(1.10, "cand")]
        (delta,) = diff_history(records)
        assert delta.status == "regression"

    def test_candidate_absent_metric_is_skipped(self):
        records = [_rec(1.0, "a"), _rec(1.0, "a", metric="other"),
                   _rec(1.0, "cand")]
        deltas = diff_history(records, commit="cand")
        assert [d.metric for d in deltas] == ["wall_s"]

    def test_latest_candidate_record_wins(self):
        records = [_rec(1.0, "a"), _rec(5.0, "cand"), _rec(1.0, "cand")]
        (delta,) = diff_history(records, commit="cand")
        assert delta.status == "ok"

    def test_render_orders_regressions_first(self):
        records = [_rec(1.0, "a"), _rec(1.5, "cand"),
                   _rec(1.0, "a", metric="ok_s"),
                   _rec(1.0, "cand", metric="ok_s")]
        text = render_diff(diff_history(records, commit="cand"), "cand")
        assert text.splitlines()[0].startswith("bench diff @ cand")
        assert "1 regression" in text
        assert text.splitlines()[1].lstrip().startswith("regression")


# ----------------------------------------------------------------------
# Local suites
# ----------------------------------------------------------------------
class TestRunBenchSuites:
    def test_functional_pass_suite_medians(self):
        records, noise = run_bench_suites(
            ["functional_pass"], repeat=3, length=2_000,
            commit="c", host="h",
        )
        by_metric = {r.metric: r for r in records}
        assert by_metric["wall_s"].direction == "lower"
        assert by_metric["refs_per_sec"].direction == "higher"
        assert by_metric["wall_s"].value > 0
        assert by_metric["wall_s"].repetitions == 3
        assert noise[("functional_pass", "wall_s")] >= 0.0

    def test_all_registered_suites_run(self):
        records, _ = run_bench_suites(
            sorted(BENCH_SUITES), repeat=1, length=1_000
        )
        assert {r.suite for r in records} == set(BENCH_SUITES)
        assert all(r.value >= 0 for r in records)

    def test_unknown_suite_and_bad_repeat(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            run_bench_suites(["nope"], repeat=1)
        with pytest.raises(ConfigurationError, match="repeat"):
            run_bench_suites(["functional_pass"], repeat=0)


# ----------------------------------------------------------------------
# Trend sparklines
# ----------------------------------------------------------------------
class TestSparkline:
    def test_rising_series_spans_lowest_to_highest(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert line == "".join(sorted(line))  # monotone series

    def test_flat_series_renders_at_the_floor(self):
        # Bit-identical reruns: everything at the lowest level, so any
        # later movement stands out.
        assert sparkline([2.5, 2.5, 2.5]) == "▁▁▁"

    def test_spike_is_the_only_peak(self):
        line = sparkline([1.0, 1.0, 10.0, 1.0])
        assert line == "▁▁█▁"

    def test_width_keeps_only_the_newest_values(self):
        line = sparkline([100.0, 1.0, 2.0, 3.0], width=3)
        # The old value 100 is dropped, so the tail rescales.
        assert line == "▁▅█"

    def test_empty_series_and_bad_width(self):
        assert sparkline([]) == ""
        with pytest.raises(ConfigurationError, match="width"):
            sparkline([1.0], width=0)


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------
class TestBenchCli:
    def _record(self, raw_path, history, commit, extra=()):
        return main([
            "bench", "record", str(raw_path),
            "--history", str(history), "--commit", commit, *extra,
        ])

    def test_record_then_diff_gates(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        raw = tmp_path / "raw.json"
        for commit, wall in (("a", 1.0), ("b", 1.0), ("c", 1.0)):
            raw.write_text(json.dumps(
                {"bench": "telemetry_smoke", "total_wall_s": wall}
            ))
            assert self._record(raw, history, commit) == 0
        raw.write_text(json.dumps(
            {"bench": "telemetry_smoke", "total_wall_s": 1.10}
        ))
        assert self._record(raw, history, "cand") == 0
        code = main([
            "bench", "diff", "--history", str(history),
            "--commit", "cand",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "regression" in out

    def test_identical_rerun_passes_diff(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        raw = tmp_path / "raw.json"
        raw.write_text(json.dumps(
            {"bench": "telemetry_smoke", "total_wall_s": 1.0}
        ))
        assert self._record(raw, history, "a") == 0
        assert self._record(raw, history, "cand") == 0
        assert main([
            "bench", "diff", "--history", str(history),
            "--commit", "cand",
        ]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_record_out_writes_normalized_document(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        raw = tmp_path / "raw.json"
        out = tmp_path / "BENCH_norm.json"
        raw.write_text(json.dumps(
            {"bench": "workqueue_chaos", "jobs": 3, "bit_identical": True}
        ))
        assert self._record(raw, history, "a",
                            extra=("--out", str(out))) == 0
        docs = json.loads(out.read_text())
        assert {d["metric"] for d in docs} == {"jobs", "bit_identical"}
        assert all(record_from_dict(d).commit == "a" for d in docs)

    def test_record_rejects_malformed_input(self, tmp_path, capsys):
        raw = tmp_path / "raw.json"
        raw.write_text("{nope")
        assert self._record(raw, tmp_path / "h.jsonl", "a") == 2
        assert "malformed" in capsys.readouterr().err
        assert main([
            "bench", "record", str(tmp_path / "missing.json"),
        ]) == 2

    def test_run_appends_and_history_lists(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        assert main([
            "bench", "run", "--suites", "functional_pass",
            "--repeat", "1", "--length", "1000",
            "--history", str(history), "--commit", "abc",
        ]) == 0
        out = capsys.readouterr().out
        assert "functional_pass.wall_s" in out
        assert "appended" in out
        assert main([
            "bench", "history", "--history", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "functional_pass.wall_s" in out
        assert "abc" in out

    def test_history_shows_trend_sparkline(self, tmp_path, capsys):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([
            _rec(value, commit) for value, commit in
            ((1.0, "a"), (2.0, "b"), (4.0, "c"), (3.0, "d"))
        ])
        assert main([
            "bench", "history", "--history", str(history.path),
        ]) == 0
        out = capsys.readouterr().out
        # Fixed fixture, fixed rendering: min..max scale over 8 levels.
        assert "▁▃█▆" in out
        assert "s.wall_s (s, lower)" in out

    def test_history_sparkline_respects_last(self, tmp_path, capsys):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([
            _rec(value, commit) for value, commit in
            ((100.0, "a"), (1.0, "b"), (2.0, "c"), (3.0, "d"))
        ])
        assert main([
            "bench", "history", "--history", str(history.path),
            "--last", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "▁▅█" in out
        assert "100" not in out  # the truncated record is not listed

    def test_run_unknown_suite_errors(self, tmp_path, capsys):
        assert main(["bench", "run", "--suites", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_diff_empty_history_is_clean(self, tmp_path, capsys):
        assert main([
            "bench", "diff", "--history", str(tmp_path / "none.jsonl"),
        ]) == 0
        assert "no bench history" in capsys.readouterr().out

    def test_diff_corrupt_history_errors(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        history.write_text("torn\n")
        assert main([
            "bench", "diff", "--history", str(history),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_ignores_other_hosts_by_default(self, tmp_path, capsys):
        # A slow record from a different machine is noise, not baseline:
        # without --any-host the diff sees no comparable records at all.
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([
            _rec(1.0, "a"), _rec(1.0, "b"), _rec(1.0, "c"),
            _rec(1.4, "cand"),
        ])
        assert main([
            "bench", "diff", "--history", str(history.path),
            "--commit", "cand",
        ]) == 0
        out = capsys.readouterr().out
        assert "no bench history from host" in out
        assert "--any-host" in out

    def test_diff_any_host_widens_to_full_history(self, tmp_path, capsys):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([
            _rec(1.0, "a"), _rec(1.0, "b"), _rec(1.0, "c"),
            _rec(1.4, "cand"),
        ])
        assert main([
            "bench", "diff", "--history", str(history.path),
            "--commit", "cand", "--any-host",
        ]) == 1
        assert "regression" in capsys.readouterr().out

    def test_diff_host_override_selects_baseline(self, tmp_path, capsys):
        # --host compares against the named machine's records; the
        # candidate commit defaults to that filtered history's last.
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append([
            _rec(1.0, "a"), _rec(1.0, "b"), _rec(1.0, "c"),
            _rec(1.4, "cand"),
        ])
        assert main([
            "bench", "diff", "--history", str(history.path),
            "--host", "h",
        ]) == 1
        assert "regression" in capsys.readouterr().out

    def test_diff_current_host_records_still_gate(self, tmp_path, capsys):
        # Records written by this machine (bench record's default host)
        # pass through the default filter unchanged.
        history = tmp_path / "hist.jsonl"
        raw = tmp_path / "raw.json"
        for commit, wall in (("a", 1.0), ("b", 1.0), ("c", 1.0)):
            raw.write_text(json.dumps(
                {"bench": "telemetry_smoke", "total_wall_s": wall}
            ))
            assert self._record(raw, history, commit) == 0
        raw.write_text(json.dumps(
            {"bench": "telemetry_smoke", "total_wall_s": 1.10}
        ))
        assert self._record(raw, history, "cand") == 0
        assert main([
            "bench", "diff", "--history", str(history),
            "--commit", "cand",
        ]) == 1
        assert "regression" in capsys.readouterr().out
