"""Cycle-accounting telemetry: ledger conservation, tracing, reports.

The load-bearing guarantees under test:

* the cycle-attribution buckets sum *exactly* to the simulated cycle
  count, for the reference engine in every configuration family and for
  the fastpath replay;
* the engine and the fastpath produce *identical* bucket totals on
  identical (config, trace) pairs — attribution cannot drift between
  the validated pair of simulators;
* the event tracer is bounded, and its Chrome dump is well-formed;
* RunReport documents round-trip and aggregate.
"""

import dataclasses
import json

import pytest

from repro.core.geometry import CacheGeometry
from repro.core.policy import (
    CachePolicy, MissHandling, ReplacementKind, WriteMissPolicy, WritePolicy,
)
from repro.core.timing import MemoryTiming
from repro.errors import CorruptResultError, SimulationError
from repro.sim.config import (
    L1Spec, LowerLevelSpec, TranslationSpec, baseline_config,
)
from repro.sim.engine import simulate
from repro.sim.fastpath import fast_simulate
from repro.sim.telemetry import (
    BUCKETS,
    CycleLedger,
    EventTracer,
    MetricsRegistry,
    RunReport,
    StageTimer,
    Telemetry,
    aggregate_reports,
    build_run_report,
    peak_rss_kb,
    quantization_info,
    render_summary,
    truncate_segments,
)
from repro.trace.record import RefKind, Trace
from repro.units import KB

L, S = int(RefKind.LOAD), int(RefKind.STORE)


def _trace_of(refs, warm=0):
    kinds = [k for k, _a in refs]
    addrs = [a for _k, a in refs]
    return Trace(kinds, addrs, [1] * len(refs), warm_boundary=warm)


# ----------------------------------------------------------------------
# truncate_segments
# ----------------------------------------------------------------------
class TestTruncateSegments:
    def test_exact_budget_is_identity(self):
        segs = [("fetch_latency", 3), ("fetch_transfer", 4)]
        assert truncate_segments(segs, 7) == segs

    def test_clips_the_tail(self):
        segs = [("fetch_latency", 3), ("fetch_transfer", 4)]
        assert truncate_segments(segs, 5) == [
            ("fetch_latency", 3), ("fetch_transfer", 2),
        ]

    def test_drops_whole_trailing_segments(self):
        segs = [("fetch_latency", 3), ("fetch_transfer", 4)]
        assert truncate_segments(segs, 3) == [("fetch_latency", 3)]

    def test_filters_zero_cycle_segments(self):
        segs = [("wb_match_stall", 0), ("fetch_latency", 2)]
        assert truncate_segments(segs, 2) == [("fetch_latency", 2)]

    def test_under_budget_raises(self):
        with pytest.raises(SimulationError):
            truncate_segments([("fetch_latency", 3)], 10)


# ----------------------------------------------------------------------
# CycleLedger
# ----------------------------------------------------------------------
class TestCycleLedger:
    def test_charge_couplet_prefers_critical_instruction_side(self):
        ledger = CycleLedger()
        ledger.charge_couplet(
            5, [("fetch_latency", 5)], [("l1_service", 2)]
        )
        assert ledger.buckets["fetch_latency"] == 5
        assert ledger.buckets["l1_service"] == 0

    def test_charge_couplet_falls_through_to_data_side(self):
        ledger = CycleLedger()
        ledger.charge_couplet(
            6, [("l1_service", 1)], [("wb_full_stall", 6)]
        )
        assert ledger.buckets["wb_full_stall"] == 6

    def test_charge_couplet_fallback_is_l1_service(self):
        ledger = CycleLedger()
        ledger.charge_couplet(1, None, None)
        assert ledger.buckets["l1_service"] == 1

    def test_verify_passes_when_conserved(self):
        ledger = CycleLedger()
        ledger.charge("l1_service", 10)
        ledger.verify(10)

    def test_verify_raises_with_delta(self):
        ledger = CycleLedger()
        ledger.charge("l1_service", 9)
        with pytest.raises(SimulationError, match=r"delta -1"):
            ledger.verify(10)

    def test_measured_view_subtracts_warm_snapshot(self):
        ledger = CycleLedger()
        ledger.charge("l1_service", 100)
        ledger.charge("fetch_latency", 20)
        ledger.mark_warm()
        ledger.charge("l1_service", 7)
        ledger.charge("mem_busy", 3)
        measured = ledger.measured()
        assert measured["l1_service"] == 7
        assert measured["mem_busy"] == 3
        assert measured["fetch_latency"] == 0
        ledger.verify(130, 10)

    def test_mark_warm_base_offset_is_pre_warm_l1_service(self):
        ledger = CycleLedger()
        ledger.charge("l1_service", 5)
        ledger.mark_warm(base_offset=3)
        ledger.charge("l1_service", 9)  # 3 pre-warm + 6 measured
        assert ledger.measured()["l1_service"] == 6

    def test_render_reports_conservation_status(self):
        ledger = CycleLedger()
        ledger.charge("l1_service", 4)
        assert "ok" in ledger.render(4)
        assert "VIOLATED" in ledger.render(5)


# ----------------------------------------------------------------------
# EventTracer
# ----------------------------------------------------------------------
class TestEventTracer:
    def test_ring_is_bounded_and_keeps_the_tail(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit(i, 1, "fetch_latency", "dcache")
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e[0] for e in tracer.events()] == [6, 7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            EventTracer(capacity=0)

    def test_chrome_trace_shape(self):
        tracer = EventTracer(capacity=8)
        tracer.emit(5, 12, "fetch_latency", "icache",
                    [("fetch_latency", 8), ("fetch_transfer", 4)])
        doc = tracer.to_chrome_trace()
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 1
        event = events[0]
        assert event["ts"] == 5 and event["dur"] == 12
        assert event["args"] == {"fetch_latency": 8, "fetch_transfer": 4}
        assert doc["metadata"]["dropped"] == 0

    def test_dump_writes_valid_json(self, tmp_path):
        tracer = EventTracer(capacity=8)
        tracer.emit(0, 3, "mem_busy", "dcache")
        out = tmp_path / "trace.json"
        tracer.dump(out)
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload


# ----------------------------------------------------------------------
# Conservation + engine/fastpath agreement on real simulations
# ----------------------------------------------------------------------
def _ledger_run(runner, config, trace):
    telemetry = Telemetry(ledger=CycleLedger())
    stats = runner(config, trace, telemetry=telemetry)
    # The simulators verify internally; re-verify from the outside so a
    # regression in *that* wiring also fails loudly here.
    telemetry.ledger.verify(stats.total_cycles, stats.cycles)
    return stats, telemetry.ledger


class TestConservationAndAgreement:
    @pytest.mark.parametrize("size_kb", [4, 32])
    @pytest.mark.parametrize("cycle_ns", [20.0, 40.0])
    def test_engine_and_fastpath_buckets_are_identical(
        self, mu3_small, size_kb, cycle_ns
    ):
        config = baseline_config(
            cache_size_bytes=size_kb * KB, cycle_ns=cycle_ns
        )
        _, engine_ledger = _ledger_run(simulate, config, mu3_small)
        _, fast_ledger = _ledger_run(fast_simulate, config, mu3_small)
        assert engine_ledger.as_dict() == fast_ledger.as_dict()
        assert engine_ledger.measured() == fast_ledger.measured()

    def test_agreement_on_risc_trace(self, rd2n4_small, small_config):
        _, engine_ledger = _ledger_run(simulate, small_config, rd2n4_small)
        _, fast_ledger = _ledger_run(fast_simulate, small_config, rd2n4_small)
        assert engine_ledger.as_dict() == fast_ledger.as_dict()

    def test_buckets_cover_the_interesting_cycles(self, mu3_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        _, ledger = _ledger_run(simulate, config, mu3_small)
        measured = ledger.measured()
        assert measured["l1_service"] > 0
        assert measured["fetch_latency"] > 0
        assert measured["fetch_transfer"] > 0

    def test_unknown_buckets_never_appear(self, mu3_small, small_config):
        _, ledger = _ledger_run(simulate, small_config, mu3_small)
        assert set(ledger.as_dict()) == set(BUCKETS)


def _engine_only_configs():
    base = baseline_config(cache_size_bytes=4 * KB)
    policy = base.l1.policy
    yield "load_forward", base.with_policy(
        dataclasses.replace(policy, miss_handling=MissHandling.LOAD_FORWARD)
    )
    yield "early_continuation", base.with_policy(
        dataclasses.replace(
            policy, miss_handling=MissHandling.EARLY_CONTINUATION
        )
    )
    yield "write_allocate", base.with_policy(
        dataclasses.replace(policy, write_miss=WriteMissPolicy.FETCH_ON_WRITE)
    )
    yield "write_through", base.with_policy(
        dataclasses.replace(policy, write_policy=WritePolicy.WRITE_THROUGH)
    )
    yield "unified", dataclasses.replace(
        base,
        l1=L1Spec(d_geometry=CacheGeometry(size_bytes=8 * KB), unified=True),
    )
    yield "two_level", dataclasses.replace(
        base,
        levels=(
            LowerLevelSpec(
                geometry=CacheGeometry(size_bytes=32 * KB, block_words=8),
                port=MemoryTiming(
                    latency_ns=40.0, transfer_rate=1.0,
                    write_op_ns=0.0, recovery_ns=0.0,
                ),
            ),
        ),
    )
    yield "translated", dataclasses.replace(
        base, translation=TranslationSpec(page_words=1024, tlb_entries=8)
    )


class TestEngineOnlyModesConserve:
    @pytest.mark.parametrize(
        "config", [c for _n, c in _engine_only_configs()],
        ids=[n for n, _c in _engine_only_configs()],
    )
    def test_conserves(self, mu3_small, config):
        stats, ledger = _ledger_run(simulate, config, mu3_small)
        assert ledger.total() == stats.total_cycles

    def test_translation_walks_land_in_their_bucket(self, mu3_small):
        config = dataclasses.replace(
            baseline_config(cache_size_bytes=4 * KB),
            translation=TranslationSpec(page_words=1024, tlb_entries=8),
        )
        _, ledger = _ledger_run(simulate, config, mu3_small)
        assert ledger.as_dict()["translation"] > 0

    def test_lower_level_time_lands_in_lower_fetch(self, mu3_small):
        config = next(
            c for n, c in _engine_only_configs() if n == "two_level"
        )
        _, ledger = _ledger_run(simulate, config, mu3_small)
        assert ledger.as_dict()["lower_fetch"] > 0


class TestTracing:
    def test_tracer_only_records_eventful_couplets(self, mu3_small):
        config = baseline_config(cache_size_bytes=8 * KB)
        telemetry = Telemetry(tracer=EventTracer(capacity=1 << 16))
        stats = simulate(config, mu3_small, telemetry=telemetry)
        assert 0 < telemetry.tracer.emitted
        total_refs = len(mu3_small)
        assert telemetry.tracer.emitted < total_refs
        # Every traced event carries a positive duration and a known track.
        for ts, dur, name, track, segments in telemetry.tracer.events():
            assert 0 <= ts <= stats.total_cycles
            assert dur > 0
            assert name in BUCKETS
            assert track in ("icache", "dcache")

    def test_engine_and_fastpath_traces_agree(self, mu3_small, small_config):
        traces = []
        for runner in (simulate, fast_simulate):
            telemetry = Telemetry(tracer=EventTracer(capacity=1 << 16))
            runner(small_config, mu3_small, telemetry=telemetry)
            traces.append(telemetry.tracer.events())
        assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# Write-buffer match stalls under a crafted trace
# ----------------------------------------------------------------------
class TestMatchStallAttribution:
    """Pin the read-match stall path with a hand-built reference stream.

    The load miss to block A keeps the memory port busy, so the store to
    block B is parked in the write buffer; the immediately following
    load to B must drain through it — a match stall, attributed to the
    ``wb_match_stall`` bucket.
    """

    TRACE = [(L, 0), (S, 64), (L, 64)]

    @pytest.mark.parametrize("runner", [simulate, fast_simulate],
                             ids=["engine", "fastpath"])
    def test_match_stall_is_counted_and_attributed(self, runner):
        config = baseline_config(cache_size_bytes=4 * KB)
        stats, ledger = _ledger_run(runner, config, _trace_of(self.TRACE))
        assert stats.buffer.match_stalls == 1
        assert ledger.as_dict()["wb_match_stall"] > 0
        assert stats.buffer.max_occupancy == 1

    def test_engine_and_fastpath_agree_on_the_crafted_trace(self):
        config = baseline_config(cache_size_bytes=4 * KB)
        engine_stats, engine_ledger = _ledger_run(
            simulate, config, _trace_of(self.TRACE)
        )
        fast_stats, fast_ledger = _ledger_run(
            fast_simulate, config, _trace_of(self.TRACE)
        )
        assert engine_stats.cycles == fast_stats.cycles
        assert engine_ledger.as_dict() == fast_ledger.as_dict()

    def test_no_stall_when_the_buffer_drains_in_time(self):
        # Without the occupying load miss the store drains before the
        # read arrives: the control case for the trace above.
        config = baseline_config(cache_size_bytes=4 * KB)
        stats, ledger = _ledger_run(
            simulate, config, _trace_of([(S, 64), (L, 64)])
        )
        assert stats.buffer.match_stalls == 0
        assert ledger.as_dict()["wb_match_stall"] == 0


# ----------------------------------------------------------------------
# Host-side profiling and RunReport
# ----------------------------------------------------------------------
class TestHostProfiling:
    def test_stage_timer_accumulates(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert set(timer.stages) == {"a", "b"}
        assert timer.total_s == pytest.approx(
            timer.stages["a"] + timer.stages["b"]
        )

    def test_peak_rss_is_positive_here(self):
        rss = peak_rss_kb()
        assert rss is not None and rss > 0

    def test_quantization_info_fields(self):
        info = quantization_info(baseline_config())
        assert info["latency_cycles"] > 0
        assert info["latency_waste_ns"] >= 0.0
        assert info["recovery_waste_ns"] >= 0.0


class TestRunReport:
    def _report(self, trace, config):
        telemetry = Telemetry(ledger=CycleLedger())
        timer = StageTimer()
        with timer.stage("simulate"):
            stats = fast_simulate(config, trace, telemetry=telemetry)
        return build_run_report(
            stats, telemetry.ledger, timer,
            run_identifier="test-run", simulator="fastpath",
            n_refs_total=len(trace), config=config,
        )

    def test_build_checks_conservation(self, mu3_small, small_config):
        report = self._report(mu3_small, small_config)
        assert report.conserved
        assert report.run_id == "test-run"
        assert report.n_refs_total == len(mu3_small)
        assert sum(report.buckets.values()) == report.total_cycles
        assert sum(report.buckets_measured.values()) == report.cycles
        assert report.refs_per_sec > 0
        assert 0.0 < report.stall_fraction < 1.0
        assert report.quantization["latency_cycles"] > 0

    def test_unconserved_ledger_is_flagged_not_raised(
        self, mu3_small, small_config
    ):
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        telemetry.ledger.charge("l1_service", 1)  # corrupt it
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config
        )
        assert not report.conserved

    def test_round_trip(self, mu3_small, small_config):
        report = self._report(mu3_small, small_config)
        payload = json.loads(json.dumps(report.to_dict()))
        restored = RunReport.from_dict(payload)
        assert restored == report

    def test_stall_fraction_empty_buckets_is_zero(self):
        report = RunReport(
            run_id="x", trace="t", config="c", simulator="fastpath",
            n_refs_total=0, n_refs_measured=0, cycles=0,
            total_cycles=0, warm_cycles=0,
        )
        assert report.stall_fraction == 0.0
        assert report.total_wall_s == 0.0

    def test_replay_block_round_trips_and_aggregates(
        self, mu3_small, small_config
    ):
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config,
            replay={"scalar_replays": 1},
        )
        payload = report.to_dict()
        assert payload["replay"] == {"scalar_replays": 1}
        assert RunReport.from_dict(payload) == report
        # Version-2 documents predate the replay block; it defaults off.
        del payload["replay"]
        assert RunReport.from_dict(payload).replay == {}
        summary = aggregate_reports([report, report])
        assert summary["replay"] == {"scalar_replays": 2}

    def test_sampling_block_round_trips_and_aggregates(
        self, mu3_small, small_config
    ):
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        block = {
            "selections": 1, "representatives": 4,
            "refs_full": 1000, "refs_sampled": 200,
            "validations": 1, "true_error_max": 0.004,
        }
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config,
            sampling=block,
        )
        payload = report.to_dict()
        assert payload["sampling"] == block
        assert RunReport.from_dict(payload) == report
        # Version-6 documents predate the sampling block.
        del payload["sampling"]
        assert RunReport.from_dict(payload).sampling == {}
        summary = aggregate_reports([report, report])
        # Counters sum across runs; *_max keys keep the worst value.
        assert summary["sampling"]["refs_sampled"] == 400
        assert summary["sampling"]["true_error_max"] == 0.004
        text = render_summary(summary)
        assert "sampling:" in text
        assert "max true error 0.0040" in text

    def test_sampling_line_omitted_without_sampling(
        self, mu3_small, small_config
    ):
        report = self._report(mu3_small, small_config)
        text = render_summary(aggregate_reports([report]))
        assert "sampling:" not in text


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        assert registry.empty()
        registry.count("passcache.hits")
        registry.count("passcache.hits", 3)
        registry.gauge("queue.depth", 2.0)
        registry.gauge("queue.depth", 7.0)
        assert registry.counters["passcache.hits"] == 4
        assert registry.gauges["queue.depth"] == 7.0
        assert not registry.empty()

    def test_count_many_skips_zeros(self):
        registry = MetricsRegistry()
        registry.count_many("replay", {"hits": 2, "misses": 0})
        assert registry.counters == {"replay.hits": 2}

    def test_span_accumulates_and_tracks_max(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.span("sweep.price_grid"):
                pass
        entry = registry.spans["sweep.price_grid"]
        assert entry["count"] == 3
        assert entry["total_s"] >= entry["max_s"] >= 0.0

    def test_span_records_even_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.span("worker.simulate"):
                raise ValueError("boom")
        assert registry.spans["worker.simulate"]["count"] == 1

    def test_dump_round_trips_through_merge(self):
        source = MetricsRegistry()
        source.count("a", 2)
        source.gauge("g", 1.5)
        with source.span("s"):
            pass
        dump = json.loads(json.dumps(source.as_dict()))
        target = MetricsRegistry()
        target.merge(dump)
        target.merge(dump)
        assert target.counters == {"a": 4}
        assert target.gauges == {"g": 1.5}
        assert target.spans["s"]["count"] == 2
        assert target.spans["s"]["max_s"] == source.spans["s"]["max_s"]

    def test_merge_ignores_malformed_dumps(self):
        registry = MetricsRegistry()
        registry.merge("not a dict")
        registry.merge({"counters": {"x": "NaN-ish"}, "spans": {"s": 3}})
        assert registry.empty()


class TestRunReportSchemaDrift:
    """Satellite: drift handling around the versioned report document.

    Forward drift (a newer writer added fields) must be collected, not
    silently dropped; backward drift (older schema without the newer
    blocks) must upgrade with empty defaults; garbage must be rejected
    with :exc:`CorruptResultError`, never a ``TypeError`` mid-aggregate.
    """

    def _payload(self, mu3_small, small_config):
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config
        )
        return report.to_dict()

    def test_unknown_fields_are_collected(self, mu3_small, small_config):
        payload = self._payload(mu3_small, small_config)
        payload["future_block"] = {"x": 1}
        payload["another"] = 2
        unknown = []
        report = RunReport.from_dict(payload, unknown=unknown)
        assert unknown == ["another", "future_block"]
        assert not hasattr(report, "future_block")

    def test_older_schema_upgrades_to_empty_blocks(
        self, mu3_small, small_config
    ):
        payload = self._payload(mu3_small, small_config)
        # A schema-4 writer predates the metrics block entirely.
        payload["schema"] = 4
        del payload["metrics"]
        report = RunReport.from_dict(payload)
        assert report.metrics == {}

    def test_non_object_payload_rejected(self):
        with pytest.raises(CorruptResultError, match="expected object"):
            RunReport.from_dict(["schema", 5])

    @pytest.mark.parametrize("marker", [True, 0, -3, "5", 2.0, None])
    def test_bad_schema_marker_rejected(
        self, marker, mu3_small, small_config
    ):
        payload = self._payload(mu3_small, small_config)
        payload["schema"] = marker
        with pytest.raises(CorruptResultError, match="schema marker"):
            RunReport.from_dict(payload)

    def test_metrics_block_round_trips(self, mu3_small, small_config):
        registry = MetricsRegistry()
        registry.count("passcache.hits", 2)
        with registry.span("worker.simulate"):
            pass
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config,
            registry=registry,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        restored = RunReport.from_dict(payload)
        assert restored.metrics["counters"] == {"passcache.hits": 2}
        summary = aggregate_reports([restored, restored])
        assert summary["metrics"]["counters"] == {"passcache.hits": 4}
        assert summary["metrics"]["spans"]["worker.simulate"]["count"] == 2
        text = render_summary(summary)
        assert "stage spans across the sweep:" in text
        assert "worker.simulate" in text

    def test_empty_registry_leaves_no_block(self, mu3_small, small_config):
        telemetry = Telemetry(ledger=CycleLedger())
        stats = fast_simulate(small_config, mu3_small, telemetry=telemetry)
        report = build_run_report(
            stats, telemetry.ledger, StageTimer(), config=small_config,
            registry=MetricsRegistry(),
        )
        assert report.metrics == {}
        summary = aggregate_reports([report])
        assert summary["metrics"] == {}


class TestAggregation:
    def test_aggregate_and_render(self, mu3_small, rd2n4_small, small_config):
        reports = []
        for trace in (mu3_small, rd2n4_small):
            telemetry = Telemetry(ledger=CycleLedger())
            timer = StageTimer()
            with timer.stage("simulate"):
                stats = fast_simulate(
                    small_config, trace, telemetry=telemetry
                )
            reports.append(build_run_report(
                stats, telemetry.ledger, timer,
                run_identifier=trace.name, config=small_config,
            ))
        summary = aggregate_reports(reports, slowest=1)
        assert summary["runs"] == 2
        assert summary["all_conserved"]
        assert summary["violations"] == []
        assert len(summary["slowest"]) == 1
        assert summary["refs_per_sec_p50"] > 0
        assert sum(summary["buckets_measured"].values()) == sum(
            r.cycles for r in reports
        )
        text = render_summary(summary)
        assert "cycle conservation: ok" in text
        assert "slowest runs:" in text

    def test_violations_are_named(self):
        bad = RunReport(
            run_id="bad-run", trace="t", config="c", simulator="fastpath",
            n_refs_total=1, n_refs_measured=1, cycles=1,
            total_cycles=1, warm_cycles=0, conserved=False,
        )
        summary = aggregate_reports([bad])
        assert not summary["all_conserved"]
        assert summary["violations"] == ["bad-run"]
        assert "VIOLATED" in render_summary(summary)


# ----------------------------------------------------------------------
# Overhead guard: disabled telemetry must not allocate per couplet
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_empty_telemetry_object_is_ignored(self, mu3_small, small_config):
        baseline = simulate(small_config, mu3_small)
        hollow = simulate(
            small_config, mu3_small, telemetry=Telemetry()
        )
        assert hollow.cycles == baseline.cycles

    def test_stats_are_identical_with_and_without_ledger(
        self, mu3_small, small_config
    ):
        plain = fast_simulate(small_config, mu3_small)
        telemetry = Telemetry(ledger=CycleLedger())
        instrumented = fast_simulate(
            small_config, mu3_small, telemetry=telemetry
        )
        assert plain == instrumented
