"""Fastpath validation: cycle-for-cycle equality with the engine.

This is the license for every design-space sweep in the repository:
the two-phase functional-pass + timing-replay simulator must agree with
the reference engine *exactly* — cycle counts, miss counters, write-back
traffic, buffer stalls and memory operation counts — across cache
organizations, clocks, memory speeds and buffer depths.
"""

import pytest

from repro.core.timing import MemoryTiming
from repro.errors import ConfigurationError
from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.sim.fastpath import (
    assemble_stats,
    check_fastpath_supported,
    fast_simulate,
    functional_pass,
    replay,
)
from repro.units import KB


def assert_stats_equal(engine_stats, fast_stats):
    assert engine_stats.cycles == fast_stats.cycles
    assert engine_stats.total_cycles == fast_stats.total_cycles
    assert engine_stats.warm_cycles == fast_stats.warm_cycles
    for side in ("icache", "dcache"):
        e = getattr(engine_stats, side)
        f = getattr(fast_stats, side)
        assert e == f, f"{side} counters differ"
    assert engine_stats.memory_reads == fast_stats.memory_reads
    assert engine_stats.memory_writes == fast_stats.memory_writes
    assert engine_stats.buffer == fast_stats.buffer


@pytest.mark.parametrize("size_kb", [2, 8, 32])
@pytest.mark.parametrize("cycle_ns", [20.0, 40.0, 56.0, 80.0])
def test_equality_across_sizes_and_clocks(mu3_small, size_kb, cycle_ns):
    config = baseline_config(
        cache_size_bytes=size_kb * KB, cycle_ns=cycle_ns
    )
    assert_stats_equal(
        simulate(config, mu3_small), fast_simulate(config, mu3_small)
    )


@pytest.mark.parametrize("assoc", [1, 2, 4])
def test_equality_across_associativities(rd2n4_small, assoc):
    config = baseline_config(cache_size_bytes=8 * KB, assoc=assoc)
    assert_stats_equal(
        simulate(config, rd2n4_small), fast_simulate(config, rd2n4_small)
    )


@pytest.mark.parametrize("block_words", [2, 8, 32])
def test_equality_across_block_sizes(mu3_small, block_words):
    config = baseline_config(
        cache_size_bytes=8 * KB, block_words=block_words
    )
    assert_stats_equal(
        simulate(config, mu3_small), fast_simulate(config, mu3_small)
    )


@pytest.mark.parametrize("latency_ns,transfer_rate", [
    (100.0, 4.0), (260.0, 1.0), (420.0, 0.25),
])
def test_equality_across_memory_speeds(rd2n4_small, latency_ns, transfer_rate):
    memory = MemoryTiming().with_latency_ns(latency_ns).with_transfer_rate(
        transfer_rate
    )
    config = baseline_config(cache_size_bytes=8 * KB, memory=memory)
    assert_stats_equal(
        simulate(config, rd2n4_small), fast_simulate(config, rd2n4_small)
    )


@pytest.mark.parametrize("depth", [1, 2, 8])
def test_equality_across_buffer_depths(mu3_small, depth):
    config = baseline_config(cache_size_bytes=4 * KB, write_buffer_depth=depth)
    assert_stats_equal(
        simulate(config, mu3_small), fast_simulate(config, mu3_small)
    )


def test_one_pass_replays_to_many_clocks(mu3_small):
    """A single functional pass re-priced at several clocks must equal a
    fresh engine run at each clock — the sweep drivers rely on this."""
    config = baseline_config(cache_size_bytes=8 * KB)
    stream = functional_pass(config, mu3_small)
    for cycle_ns in (24.0, 36.0, 52.0, 64.0):
        outcome = replay(stream, config.memory, cycle_ns)
        fast = assemble_stats(stream, outcome, cycle_ns)
        engine = simulate(config.with_cycle_ns(cycle_ns), mu3_small)
        assert_stats_equal(engine, fast)


class TestSupportChecks:
    def test_unified_rejected(self):
        from repro.core.geometry import CacheGeometry
        from repro.sim.config import L1Spec, SystemConfig

        config = SystemConfig(
            l1=L1Spec(d_geometry=CacheGeometry(size_bytes=4 * KB), unified=True)
        )
        with pytest.raises(ConfigurationError):
            check_fastpath_supported(config)

    def test_multilevel_rejected(self):
        from repro.core.geometry import CacheGeometry
        from repro.sim.config import LowerLevelSpec

        config = baseline_config(cache_size_bytes=4 * KB).with_levels(
            (LowerLevelSpec(geometry=CacheGeometry(size_bytes=64 * KB, block_words=4)),)
        )
        with pytest.raises(ConfigurationError):
            check_fastpath_supported(config)

    def test_write_through_rejected(self):
        from repro.core.policy import CachePolicy, WritePolicy

        config = baseline_config(cache_size_bytes=4 * KB).with_policy(
            CachePolicy(write_policy=WritePolicy.WRITE_THROUGH)
        )
        with pytest.raises(ConfigurationError):
            check_fastpath_supported(config)

    def test_base_config_supported(self):
        check_fastpath_supported(baseline_config())


class TestDegenerateOrganizations:
    """Corner organizations the stack pass's set-refinement collapses
    onto: the engine and fastpath must agree exactly on each, and both
    simulators must reject the no-measurement corners identically."""

    def _policies(self):
        from repro.core.policy import ReplacementKind

        return list(ReplacementKind)

    def test_fully_associative_single_set(self, tiny_trace):
        from repro.core.policy import ReplacementKind

        for replacement in self._policies():
            assoc = 4
            config = baseline_config(
                cache_size_bytes=4 * 4 * assoc, block_words=4, assoc=assoc,
                replacement=replacement,
            )
            assert config.l1.i_geometry.n_sets == 1
            assert_stats_equal(
                simulate(config, tiny_trace),
                fast_simulate(config, tiny_trace),
            )

    def test_direct_mapped_every_policy(self, tiny_trace):
        for replacement in self._policies():
            config = baseline_config(
                cache_size_bytes=2 * KB, replacement=replacement
            )
            assert_stats_equal(
                simulate(config, tiny_trace),
                fast_simulate(config, tiny_trace),
            )

    def test_empty_trace_rejected_by_both(self):
        from repro.trace.record import Trace

        empty = Trace([], [], name="empty", warm_boundary=0)
        config = baseline_config(cache_size_bytes=4 * KB)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            fast_simulate(config, empty)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            simulate(config, empty)

    def test_exhausted_warm_boundary_rejected_by_both(self):
        from repro.trace.record import RefKind, Trace

        kinds = [int(RefKind.IFETCH)] * 20
        trace = Trace(kinds, list(range(20)), name="w", warm_boundary=20)
        config = baseline_config(cache_size_bytes=4 * KB)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            fast_simulate(config, trace)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            simulate(config, trace)
