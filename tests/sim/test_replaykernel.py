"""Batch replay-kernel validation: cycle-for-cycle equality with replay().

The kernel's license to exist is exactness: every outcome it prices must
match the scalar ``replay()`` loop bit for bit — cycle counts, memory
operation counters, buffer stall counters — across the same validation
matrix the fastpath itself is held to, plus the contention corners the
vectorized paths hand off to the scalar state machine (write-buffer
full stalls, stale-read match stalls, warm boundary after the final
event, empty event streams).
"""

import pytest

from repro.core.timing import MemoryTiming
from repro.errors import ConfigurationError
from repro.sim.config import baseline_config
from repro.sim.fastpath import EventStream, functional_pass, replay
from repro.sim.replaykernel import (
    REPLAY_SCHEMA,
    BatchReplayKernel,
    KernelStats,
    TimingPoint,
    outcome_from_dict,
    outcome_to_dict,
    replay_batch,
)
from repro.sim.statistics import CacheCounters
from repro.units import KB


def assert_outcome_equal(scalar, batch, context=""):
    for field in (
        "cycles", "total_cycles", "warm_cycles",
        "memory_reads", "memory_writes", "memory_busy_cycles",
    ):
        assert getattr(scalar, field) == getattr(batch, field), (
            f"{field} differs {context}"
        )
    assert scalar.buffer == batch.buffer, f"buffer counters differ {context}"


def assert_grid_equal(stream, points):
    """Price ``points`` both ways and require bit-identical outcomes."""
    kernel = BatchReplayKernel(stream)
    outcomes = kernel.replay_grid(points)
    assert len(outcomes) == len(points)
    for point, batch in zip(points, outcomes):
        scalar = replay(
            stream, point.memory, point.cycle_ns, point.write_buffer_depth
        )
        assert_outcome_equal(scalar, batch, context=f"at {point}")
    return outcomes


def empty_stream():
    """An EventStream whose trace produced no timing events at all."""
    return EventStream(
        trace_name="empty", config_summary="synthetic",
        i_block_words=4, d_block_words=4,
        n_couplets=16, n_couplets_measured=8, n_refs_measured=8,
        warm_event_index=0, warm_base_offset=8, end_base=16,
        ev_gap=[], ev_imiss=[], ev_iaddr=[], ev_ipid=[], ev_dtype=[],
        ev_daddr=[], ev_dpid=[], ev_vaddr=[], ev_vpid=[],
        icache=CacheCounters(), dcache=CacheCounters(),
    )


# ----------------------------------------------------------------------
# Equality across the validation matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("size_kb", [2, 8, 32])
def test_equality_across_sizes_and_clocks(mu3_small, size_kb):
    config = baseline_config(cache_size_bytes=size_kb * KB)
    stream = functional_pass(config, mu3_small)
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c)
        for c in (20.0, 40.0, 56.0, 80.0)
    ]
    assert_grid_equal(stream, points)


@pytest.mark.parametrize("latency_ns,transfer_rate", [
    (100.0, 4.0), (260.0, 1.0), (420.0, 0.25),
])
def test_equality_across_memory_speeds(
    rd2n4_small, latency_ns, transfer_rate
):
    memory = MemoryTiming().with_latency_ns(latency_ns).with_transfer_rate(
        transfer_rate
    )
    config = baseline_config(cache_size_bytes=8 * KB, memory=memory)
    stream = functional_pass(config, rd2n4_small)
    points = [
        TimingPoint(memory=memory, cycle_ns=c, write_buffer_depth=d)
        for c in (20.0, 40.0) for d in (1, 4)
    ]
    assert_grid_equal(stream, points)


@pytest.mark.parametrize("block_words", [2, 8, 32])
def test_equality_across_block_sizes(mu3_small, block_words):
    config = baseline_config(
        cache_size_bytes=8 * KB, block_words=block_words
    )
    stream = functional_pass(config, mu3_small)
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c)
        for c in (25.0, 65.0)
    ]
    assert_grid_equal(stream, points)


@pytest.mark.parametrize("assoc", [2, 4])
def test_equality_across_associativities(rd2n4_small, assoc):
    config = baseline_config(cache_size_bytes=8 * KB, assoc=assoc)
    stream = functional_pass(config, rd2n4_small)
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c)
        for c in (20.0, 80.0)
    ]
    assert_grid_equal(stream, points)


# ----------------------------------------------------------------------
# Contention corners the vectorized paths must hand off exactly
# ----------------------------------------------------------------------
def test_forced_write_buffer_full_stalls(mu3_small):
    """Depth-1 buffers under a slow memory stall on nearly every push;
    the contended scalar tail must reproduce each stall cycle."""
    memory = MemoryTiming().with_latency_ns(420.0)
    config = baseline_config(cache_size_bytes=2 * KB, memory=memory)
    stream = functional_pass(config, mu3_small)
    points = [
        TimingPoint(memory=memory, cycle_ns=c, write_buffer_depth=1)
        for c in (20.0, 40.0)
    ]
    outcomes = assert_grid_equal(stream, points)
    assert all(o.buffer.full_stalls > 100 for o in outcomes)


@pytest.mark.parametrize("depth", [1, 2, 4, 8])
def test_stale_read_match_stalls(rd2n4_small, depth):
    """Reads overlapping a buffered victim must wait for its drain; the
    thrashing 2 KB configuration hits that corner hundreds of times."""
    config = baseline_config(cache_size_bytes=2 * KB)
    stream = functional_pass(config, rd2n4_small)
    points = [
        TimingPoint(
            memory=config.memory, cycle_ns=c, write_buffer_depth=depth
        )
        for c in (20.0, 40.0)
    ]
    outcomes = assert_grid_equal(stream, points)
    assert all(o.buffer.match_stalls > 100 for o in outcomes)


def test_deep_buffer_beyond_lookback(mu3_small):
    """Depths past the precomputed lookback window fall back to the
    buffer-scanning path; equality must hold there too."""
    config = baseline_config(cache_size_bytes=2 * KB)
    stream = functional_pass(config, mu3_small)
    points = [
        TimingPoint(
            memory=config.memory, cycle_ns=20.0, write_buffer_depth=d
        )
        for d in (9, 16)
    ]
    assert_grid_equal(stream, points)


def test_warm_boundary_after_final_event(mu3_small):
    """When the warm boundary lies after the last event, the snapshot
    is taken at end-of-stream plus the trailing hit cycles."""
    config = baseline_config(cache_size_bytes=8 * KB)
    base = functional_pass(config, mu3_small)
    # Rebuild the stream with the warm boundary pushed past the final
    # event: everything is warm-up, the measured window is empty.
    stream = EventStream(
        trace_name=base.trace_name, config_summary=base.config_summary,
        i_block_words=base.i_block_words, d_block_words=base.d_block_words,
        n_couplets=base.n_couplets, n_couplets_measured=0,
        n_refs_measured=0,
        warm_event_index=base.n_events, warm_base_offset=base.end_base,
        end_base=base.end_base,
        ev_gap=base.ev_gap, ev_imiss=base.ev_imiss,
        ev_iaddr=base.ev_iaddr, ev_ipid=base.ev_ipid,
        ev_dtype=base.ev_dtype, ev_daddr=base.ev_daddr,
        ev_dpid=base.ev_dpid, ev_vaddr=base.ev_vaddr,
        ev_vpid=base.ev_vpid,
        icache=CacheCounters(), dcache=CacheCounters(),
    )
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c, write_buffer_depth=d)
        for c in (20.0, 56.0) for d in (1, 4)
    ]
    outcomes = assert_grid_equal(stream, points)
    for outcome in outcomes:
        assert outcome.memory_reads == 0
        assert outcome.memory_writes == 0


def test_empty_event_stream():
    stream = empty_stream()
    points = [
        TimingPoint(memory=MemoryTiming(), cycle_ns=c, write_buffer_depth=d)
        for c in (20.0, 80.0) for d in (1, 8)
    ]
    outcomes = assert_grid_equal(stream, points)
    for outcome in outcomes:
        assert outcome.total_cycles == stream.end_base
        assert outcome.buffer.pushes == 0


# ----------------------------------------------------------------------
# Kernel bookkeeping
# ----------------------------------------------------------------------
def test_grid_outcomes_do_not_alias(mu3_small):
    """Points with identical quantized costs are priced once, but every
    returned outcome must own its (mutable) buffer counters."""
    config = baseline_config(cache_size_bytes=4 * KB)
    stream = functional_pass(config, mu3_small)
    # 65 ns and 80 ns quantize the default memory to the same per-event
    # cycle costs; the outcomes are equal but must not share state.
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c)
        for c in (65.0, 80.0)
    ]
    first, second = BatchReplayKernel(stream).replay_grid(points)
    assert first.cycles == second.cycles
    assert first.buffer == second.buffer
    assert first is not second
    assert first.buffer is not second.buffer


def test_kernel_stats_account_every_event(mu3_small):
    config = baseline_config(cache_size_bytes=8 * KB)
    stream = functional_pass(config, mu3_small)
    kernel = BatchReplayKernel(stream)
    points = [
        TimingPoint(memory=config.memory, cycle_ns=c)
        for c in (20.0, 40.0, 56.0)
    ]
    kernel.replay_grid(points)
    stats = kernel.stats
    assert stats.batch_outcomes == len(points)
    assert stats.scalar_replays == 0
    assert (
        stats.vectorized_events + stats.scalar_events
        == stream.n_events * len(points)
    )
    assert stats.vectorized_events > 0


def test_replay_batch_wrapper_merges_stats(mu3_small):
    config = baseline_config(cache_size_bytes=8 * KB)
    stream = functional_pass(config, mu3_small)
    stats = KernelStats(scalar_replays=2)
    points = [TimingPoint(memory=config.memory, cycle_ns=40.0)]
    outcomes = replay_batch(stream, points, stats=stats)
    assert len(outcomes) == 1
    assert stats.batch_outcomes == 1
    assert stats.scalar_replays == 2
    merged = KernelStats()
    merged.merge(stats)
    assert merged.as_dict() == stats.as_dict()


def test_timing_point_validation():
    with pytest.raises(ConfigurationError):
        TimingPoint(memory=MemoryTiming(), cycle_ns=0.0)
    with pytest.raises(ConfigurationError):
        TimingPoint(memory=MemoryTiming(), cycle_ns=40.0,
                    write_buffer_depth=0)


# ----------------------------------------------------------------------
# Outcome serialization (the REPRO008-fingerprinted schema surface)
# ----------------------------------------------------------------------
def test_outcome_round_trip(mu3_small):
    config = baseline_config(cache_size_bytes=2 * KB)
    stream = functional_pass(config, mu3_small)
    outcome = replay(stream, config.memory, 20.0, 1)
    payload = outcome_to_dict(outcome)
    assert payload["schema"] == REPLAY_SCHEMA
    restored = outcome_from_dict(payload)
    assert restored == outcome


def test_outcome_dict_covers_every_field(mu3_small):
    """Key-drift guard: the serialized document must mention every
    ReplayOutcome field (buffer counters flattened with a ``buffer_``
    prefix), so a new field cannot ship without a schema bump."""
    import dataclasses

    from repro.sim.fastpath import ReplayOutcome
    from repro.sim.statistics import BufferCounters

    config = baseline_config(cache_size_bytes=8 * KB)
    stream = functional_pass(config, mu3_small)
    outcome = replay(stream, config.memory, 40.0)
    keys = set(outcome_to_dict(outcome))
    expected = {"schema"}
    for field in dataclasses.fields(ReplayOutcome):
        if field.name == "buffer":
            expected.update(
                f"buffer_{f.name}" for f in dataclasses.fields(BufferCounters)
            )
        else:
            expected.add(field.name)
    assert keys == expected


def test_outcome_schema_mismatch_rejected(mu3_small):
    config = baseline_config(cache_size_bytes=8 * KB)
    stream = functional_pass(config, mu3_small)
    payload = outcome_to_dict(replay(stream, config.memory, 40.0))
    payload["schema"] = REPLAY_SCHEMA + 1
    with pytest.raises(ConfigurationError):
        outcome_from_dict(payload)
