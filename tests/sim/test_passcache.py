"""Functional-pass cache: keying, round trips, corruption, warm sweeps.

The load-bearing guarantees under test:

* a cached pass replays cycle-for-cycle identically to a fresh one,
  across the same organization/clock/memory matrix that licenses the
  fastpath itself (``test_fastpath_vs_engine``);
* a warm cache makes a repeated sweep perform *zero* functional passes
  and zero couplet pairings (verified by counters and by poisoning the
  pass entry points);
* every corruption mode — truncation, bit flips, schema drift, key
  mismatch — degrades to a quarantine-and-miss, never to a crash or a
  wrong replay.
"""

import functools
import json
import os
import pickle

import numpy as np
import pytest

from repro.core.sweep import run_speed_size_sweep
from repro.core.timing import MemoryTiming
from repro.errors import CorruptResultError
from repro.sim.config import baseline_config
from repro.sim.fastpath import (
    EVENT_FIELDS,
    fast_simulate,
    functional_pass,
)
from repro.sim.passcache import (
    PASSCACHE_SCHEMA,
    PassCache,
    cache_key,
    cached_fast_simulate,
    stream_from_dict,
    stream_to_dict,
)
from repro.trace.suite import build_trace
from repro.units import KB

_STREAM_SCALARS = (
    "trace_name", "config_summary", "i_block_words", "d_block_words",
    "n_couplets", "n_couplets_measured", "n_refs_measured",
    "warm_event_index", "warm_base_offset", "end_base", "n_events",
)


def assert_streams_equal(a, b):
    for name in _STREAM_SCALARS:
        assert getattr(a, name) == getattr(b, name), name
    for name in EVENT_FIELDS:
        assert list(getattr(a, name)) == list(getattr(b, name)), name
    assert a.icache == b.icache
    assert a.dcache == b.dcache


def _entry_path(cache, config, trace, seed=0):
    return cache.directory / f"{cache_key(config, trace, seed)}.json"


def _rewrite(path, mutate):
    """Load an entry's JSON, apply ``mutate(payload)``, write it back."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    mutate(payload)
    path.write_text(
        json.dumps(payload, separators=(",", ":")), encoding="utf-8"
    )


class TestCacheKey:
    def test_deterministic(self, mu3_small, small_config):
        assert cache_key(small_config, mu3_small) == cache_key(
            small_config, mu3_small
        )

    def test_seed_changes_key(self, mu3_small, small_config):
        assert cache_key(small_config, mu3_small, seed=0) != cache_key(
            small_config, mu3_small, seed=1
        )

    def test_organization_changes_key(self, mu3_small):
        a = baseline_config(cache_size_bytes=4 * KB)
        b = baseline_config(cache_size_bytes=8 * KB)
        assert cache_key(a, mu3_small) != cache_key(b, mu3_small)

    def test_temporal_change_invalidates_conservatively(self, mu3_small):
        # cycle time does not affect the event stream, but the key is
        # shared with campaign run ids — a timing change must miss.
        config = baseline_config(cache_size_bytes=4 * KB)
        assert cache_key(config, mu3_small) != cache_key(
            config.with_cycle_ns(20.0), mu3_small
        )

    def test_trace_content_changes_key(self, mu3_small, small_config):
        other = build_trace("mu3", length=10_000, seed=3)
        assert cache_key(small_config, mu3_small) != cache_key(
            small_config, other
        )


class TestRoundTrip:
    def test_dict_round_trip(self, mu3_small, small_config):
        stream = functional_pass(small_config, mu3_small)
        back = stream_from_dict(
            json.loads(json.dumps(stream_to_dict(stream)))
        )
        assert_streams_equal(stream, back)

    def test_put_then_get_across_instances(
        self, tmp_path, mu3_small, small_config
    ):
        stream = functional_pass(small_config, mu3_small)
        writer = PassCache(tmp_path / "pc")
        writer.put(small_config, mu3_small, 0, stream)
        assert writer.counters.puts == 1
        assert writer.counters.bytes_written > 0

        reader = PassCache(tmp_path / "pc")
        back = reader.get(small_config, mu3_small)
        assert back is not None
        assert_streams_equal(stream, back)
        assert reader.counters.hits == 1
        assert reader.counters.misses == 0
        assert reader.counters.bytes_read > 0

    def test_absent_entry_is_plain_miss(
        self, tmp_path, mu3_small, small_config
    ):
        cache = PassCache(tmp_path / "pc")
        assert cache.get(small_config, mu3_small) is None
        assert cache.counters.misses == 1
        assert cache.counters.corrupt == 0

    def test_get_or_run_simulates_once(
        self, tmp_path, mu3_small, small_config
    ):
        cache = PassCache(tmp_path / "pc")
        first = cache.get_or_run(small_config, mu3_small)
        second = cache.get_or_run(small_config, mu3_small)
        assert_streams_equal(first, second)
        assert cache.counters.misses == 1
        assert cache.counters.hits == 1
        assert cache.counters.puts == 1
        assert len(cache) == 1


class TestStreamFromDictValidation:
    @pytest.fixture()
    def doc(self, tiny_trace, small_config):
        return stream_to_dict(functional_pass(small_config, tiny_trace))

    def test_non_object_payload_rejected(self):
        with pytest.raises(CorruptResultError):
            stream_from_dict([1, 2, 3])

    def test_missing_buffer_rejected(self, doc):
        del doc["ev_gap"]
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_bad_base64_rejected(self, doc):
        doc["ev_gap"] = "!!! not base64 !!!"
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_non_string_buffer_rejected(self, doc):
        doc["ev_gap"] = [1, 2, 3]
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_ragged_buffers_rejected(self, doc):
        # chop one buffer to a different (still 8-byte-aligned) length
        raw = doc["ev_imiss"]
        doc["ev_imiss"] = raw[: len(raw) // 2 // 4 * 4]
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_misaligned_bytes_rejected(self, doc):
        import base64

        doc["ev_gap"] = base64.b64encode(b"12345").decode("ascii")
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_non_integer_scalar_rejected(self, doc):
        doc["end_base"] = "not-a-number"
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)

    def test_n_events_mismatch_rejected(self, doc):
        doc["n_events"] = doc["n_events"] + 1
        with pytest.raises(CorruptResultError):
            stream_from_dict(doc)


class TestCorruption:
    """Every corruption mode must miss cleanly, never crash."""

    @pytest.fixture()
    def seeded(self, tmp_path, tiny_trace, small_config):
        cache = PassCache(tmp_path / "pc")
        cache.put(
            small_config, tiny_trace, 0,
            functional_pass(small_config, tiny_trace),
        )
        return cache, _entry_path(cache, small_config, tiny_trace)

    def test_truncated_file_misses_and_quarantines(
        self, seeded, tiny_trace, small_config
    ):
        cache, path = seeded
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")

        assert cache.get(small_config, tiny_trace) is None
        assert cache.counters.corrupt == 1
        assert cache.counters.misses == 1
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).exists()

    def test_tampered_payload_fails_checksum(
        self, seeded, tiny_trace, small_config
    ):
        cache, path = seeded
        _rewrite(path, lambda p: p["stream"].update(
            n_couplets=p["stream"]["n_couplets"] + 1
        ))
        assert cache.get(small_config, tiny_trace) is None
        assert cache.counters.corrupt == 1
        assert (cache.quarantine_dir / path.name).exists()

    def test_schema_bump_is_clean_miss(
        self, seeded, tiny_trace, small_config
    ):
        cache, path = seeded
        _rewrite(path, lambda p: p.update(schema=PASSCACHE_SCHEMA + 1))

        assert cache.get(small_config, tiny_trace) is None
        assert cache.counters.corrupt == 0
        assert cache.counters.misses == 1
        # not corruption: the old entry stays until overwritten
        assert path.exists()
        assert not cache.quarantine_dir.exists()

    def test_key_mismatch_detected(self, seeded, tiny_trace, small_config):
        cache, path = seeded
        imposter = path.with_name("some-other-key.json")
        os.replace(path, imposter)
        report = cache.verify()
        assert not report.clean
        assert any("key mismatch" in reason for _, reason in report.corrupt)

    def test_get_or_run_recovers_from_corruption(
        self, seeded, tiny_trace, small_config
    ):
        cache, path = seeded
        fresh = functional_pass(small_config, tiny_trace)
        path.write_text("garbage", encoding="utf-8")

        recovered = cache.get_or_run(small_config, tiny_trace)
        assert_streams_equal(fresh, recovered)
        # re-persisted: the next lookup is a hit again
        assert cache.get(small_config, tiny_trace) is not None

    def test_put_overwrites_schema_mismatched_entry(
        self, seeded, tiny_trace, small_config
    ):
        cache, path = seeded
        _rewrite(path, lambda p: p.update(schema=PASSCACHE_SCHEMA + 1))
        stream = cache.get_or_run(small_config, tiny_trace)
        assert stream is not None
        assert cache.get(small_config, tiny_trace) is not None
        assert cache.counters.hits == 1


class TestVerifyGcStats:
    def _populate(self, tmp_path, trace, n=3):
        cache = PassCache(tmp_path / "pc")
        configs = [
            baseline_config(cache_size_bytes=(2 ** k) * KB)
            for k in range(1, n + 1)
        ]
        for config in configs:
            cache.put(config, trace, 0, functional_pass(config, trace))
        return cache, configs

    def test_verify_clean(self, tmp_path, tiny_trace):
        cache, _ = self._populate(tmp_path, tiny_trace)
        report = cache.verify()
        assert report.clean
        assert len(report.ok) == 3
        assert "3 entries ok" in report.render()

    def test_verify_reports_without_repair(self, tmp_path, tiny_trace):
        cache, configs = self._populate(tmp_path, tiny_trace)
        victim = _entry_path(cache, configs[0], tiny_trace)
        victim.write_text("{", encoding="utf-8")

        report = cache.verify()
        assert not report.clean
        assert len(report.corrupt) == 1
        assert victim.exists()  # report-only: nothing moved

    def test_verify_repair_quarantines(self, tmp_path, tiny_trace):
        cache, configs = self._populate(tmp_path, tiny_trace)
        victim = _entry_path(cache, configs[0], tiny_trace)
        victim.write_text("{", encoding="utf-8")
        stray = cache.directory / ".tmp.half-written"
        stray.write_text("partial", encoding="utf-8")

        report = cache.verify(repair=True)
        assert len(report.quarantined) == 1
        assert not victim.exists()
        assert (cache.quarantine_dir / victim.name).exists()
        assert not stray.exists()
        assert len(cache) == 2

    def test_verify_accepts_foreign_schema(self, tmp_path, tiny_trace):
        cache, configs = self._populate(tmp_path, tiny_trace, n=1)
        _rewrite(
            _entry_path(cache, configs[0], tiny_trace),
            lambda p: p.update(schema=PASSCACHE_SCHEMA + 1),
        )
        assert cache.verify().clean

    def test_disk_stats(self, tmp_path, tiny_trace):
        cache, _ = self._populate(tmp_path, tiny_trace)
        stats = cache.disk_stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["quarantined"] == 0

    def test_gc_noop_without_budgets(self, tmp_path, tiny_trace):
        cache, _ = self._populate(tmp_path, tiny_trace)
        assert cache.gc() == []
        assert len(cache) == 3

    def test_gc_evicts_oldest_first(self, tmp_path, tiny_trace):
        cache, configs = self._populate(tmp_path, tiny_trace)
        # pin deterministic mtimes: configs[0] oldest, configs[2] newest
        for age, config in enumerate(configs):
            path = _entry_path(cache, config, tiny_trace)
            stamp = 1_000_000_000_000_000_000 + age * 1_000_000_000
            os.utime(path, ns=(stamp, stamp))

        removed = cache.gc(max_entries=1)
        assert len(removed) == 2
        assert len(cache) == 1
        survivor = _entry_path(cache, configs[2], tiny_trace)
        assert survivor.exists()

    def test_gc_max_bytes_evicts_everything_at_zero(
        self, tmp_path, tiny_trace
    ):
        cache, _ = self._populate(tmp_path, tiny_trace)
        removed = cache.gc(max_bytes=0)
        assert len(removed) == 3
        assert len(cache) == 0


class TestCachedFastSimulate:
    def test_matches_fast_simulate(self, tmp_path, mu3_small, small_config):
        cache = PassCache(tmp_path / "pc")
        cached = cached_fast_simulate(small_config, mu3_small, cache=cache)
        assert cached == fast_simulate(small_config, mu3_small)
        # second call replays from disk, same answer
        again = cached_fast_simulate(small_config, mu3_small, cache=cache)
        assert again == cached
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1

    def test_cache_dir_form_matches(self, tmp_path, mu3_small, small_config):
        stats = cached_fast_simulate(
            small_config, mu3_small, cache_dir=tmp_path / "pc"
        )
        assert stats == fast_simulate(small_config, mu3_small)

    def test_requires_cache_or_dir(self, mu3_small, small_config):
        with pytest.raises(ValueError):
            cached_fast_simulate(small_config, mu3_small)

    def test_partial_is_picklable(self, tmp_path):
        # campaign workers carry the simulate_fn across the process
        # boundary as a partial over cache_dir
        fn = functools.partial(
            cached_fast_simulate, cache_dir=str(tmp_path / "pc")
        )
        assert pickle.loads(pickle.dumps(fn)).keywords["cache_dir"]


class TestWarmSweep:
    """Acceptance: a warm cache means zero functional passes."""

    SIZES = (2 * KB, 4 * KB)
    CLOCKS = (20.0, 40.0)

    def test_repeat_sweep_runs_zero_passes(
        self, tmp_path, mu3_small, rd2n4_small, monkeypatch
    ):
        traces = [mu3_small, rd2n4_small]
        cold_cache = PassCache(tmp_path / "pc")
        cold = run_speed_size_sweep(
            traces, self.SIZES, self.CLOCKS, pass_cache=cold_cache
        )
        n_passes = len(traces) * len(self.SIZES)
        assert cold_cache.counters.misses == n_passes
        assert cold_cache.counters.puts == n_passes
        assert cold_cache.counters.hits == 0

        # poison the pass entry points: the warm sweep must touch neither
        def boom(*args, **kwargs):
            raise AssertionError("warm sweep ran a functional pass")

        monkeypatch.setattr("repro.core.sweep.functional_pass", boom)
        monkeypatch.setattr("repro.core.sweep.pair_couplets", boom)

        warm_cache = PassCache(tmp_path / "pc")
        warm = run_speed_size_sweep(
            traces, self.SIZES, self.CLOCKS, pass_cache=warm_cache
        )
        assert warm_cache.counters.misses == 0
        assert warm_cache.counters.puts == 0
        assert warm_cache.counters.hits == n_passes
        assert np.array_equal(cold.execution_ns, warm.execution_ns)

    def test_cold_sweep_with_cache_matches_uncached(
        self, tmp_path, mu3_small
    ):
        plain = run_speed_size_sweep([mu3_small], self.SIZES, self.CLOCKS)
        cached = run_speed_size_sweep(
            [mu3_small], self.SIZES, self.CLOCKS,
            pass_cache=PassCache(tmp_path / "pc"),
        )
        assert np.array_equal(plain.execution_ns, cached.execution_ns)

    def test_corrupt_cache_degrades_to_resimulation(
        self, tmp_path, mu3_small
    ):
        cache = PassCache(tmp_path / "pc")
        run_speed_size_sweep(
            [mu3_small], self.SIZES, self.CLOCKS, pass_cache=cache
        )
        for path in cache.directory.glob("*.json"):
            path.write_text("garbage", encoding="utf-8")

        retry_cache = PassCache(tmp_path / "pc")
        plain = run_speed_size_sweep([mu3_small], self.SIZES, self.CLOCKS)
        healed = run_speed_size_sweep(
            [mu3_small], self.SIZES, self.CLOCKS, pass_cache=retry_cache
        )
        assert retry_cache.counters.corrupt == len(self.SIZES)
        assert np.array_equal(plain.execution_ns, healed.execution_ns)


# ---------------------------------------------------------------------
# Cached-vs-fresh equality across the fastpath validation matrix
# ---------------------------------------------------------------------
class TestMatrixEquality:
    """A warm-cache replay must equal a fresh simulation exactly, over
    the same matrix that licenses the fastpath against the engine."""

    def _assert_cached_equals_fresh(self, tmp_path, config, trace):
        fresh = fast_simulate(config, trace)
        cold = PassCache(tmp_path / "pc")
        assert cached_fast_simulate(config, trace, cache=cold) == fresh
        # a *separate* instance forces the disk round trip
        warm = PassCache(tmp_path / "pc")
        assert cached_fast_simulate(config, trace, cache=warm) == fresh
        assert warm.counters.hits == 1

    @pytest.mark.parametrize("size_kb", [2, 8, 32])
    @pytest.mark.parametrize("cycle_ns", [20.0, 40.0, 56.0, 80.0])
    def test_sizes_and_clocks(self, tmp_path, mu3_small, size_kb, cycle_ns):
        config = baseline_config(
            cache_size_bytes=size_kb * KB, cycle_ns=cycle_ns
        )
        self._assert_cached_equals_fresh(tmp_path, config, mu3_small)

    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_associativities(self, tmp_path, rd2n4_small, assoc):
        config = baseline_config(cache_size_bytes=8 * KB, assoc=assoc)
        self._assert_cached_equals_fresh(tmp_path, config, rd2n4_small)

    @pytest.mark.parametrize("block_words", [2, 8, 32])
    def test_block_sizes(self, tmp_path, mu3_small, block_words):
        config = baseline_config(
            cache_size_bytes=8 * KB, block_words=block_words
        )
        self._assert_cached_equals_fresh(tmp_path, config, mu3_small)

    @pytest.mark.parametrize("latency_ns,transfer_rate", [
        (100.0, 4.0), (260.0, 1.0), (420.0, 0.25),
    ])
    def test_memory_speeds(
        self, tmp_path, rd2n4_small, latency_ns, transfer_rate
    ):
        memory = MemoryTiming().with_latency_ns(
            latency_ns
        ).with_transfer_rate(transfer_rate)
        config = baseline_config(cache_size_bytes=8 * KB, memory=memory)
        self._assert_cached_equals_fresh(tmp_path, config, rd2n4_small)


class TestStackPassInterop:
    """Entries written by the shared stack walk and by per-organization
    scalar passes must be indistinguishable — same keys, same bytes,
    interchangeable in either direction."""

    def _grid(self):
        from repro.core.policy import ReplacementKind

        return [
            baseline_config(
                cache_size_bytes=size * KB, block_words=block,
                replacement=ReplacementKind.LRU,
            )
            for size in (2, 8)
            for block in (2, 4)
        ]

    def test_stack_entries_are_byte_identical(self, tmp_path, tiny_trace):
        from repro.core.sweep import run_functional_passes

        configs = self._grid()
        jobs = [(c, tiny_trace, 0) for c in configs]
        scalar_cache = PassCache(tmp_path / "scalar")
        run_functional_passes(jobs, cache=scalar_cache)
        stack_cache = PassCache(tmp_path / "stack")
        run_functional_passes(jobs, cache=stack_cache, strategy="stack")
        for config in configs:
            key = cache_key(config, tiny_trace, 0)
            a = (scalar_cache.directory / f"{key}.json").read_bytes()
            b = (stack_cache.directory / f"{key}.json").read_bytes()
            assert a == b, config.describe()

    def test_scalar_reads_stack_written_cache(self, tmp_path, tiny_trace):
        """A cache filled by one stack walk satisfies a scalar-strategy
        rerun with zero functional passes."""
        from repro.core.sweep import run_functional_passes
        from repro.sim.stackpass import StackPassStats

        configs = self._grid()
        jobs = [(c, tiny_trace, 0) for c in configs]
        stats = StackPassStats()
        cache = PassCache(tmp_path / "pc")
        first = run_functional_passes(
            jobs, cache=cache, strategy="stack", stack_stats=stats
        )
        assert stats.walks == 1
        rerun_cache = PassCache(tmp_path / "pc")
        second = run_functional_passes(jobs, cache=rerun_cache)
        assert rerun_cache.counters.hits == len(jobs)
        assert rerun_cache.counters.misses == 0
        for a, b in zip(first, second):
            assert_streams_equal(a, b)

    def test_stack_reads_scalar_written_cache(self, tmp_path, tiny_trace):
        """A cache filled by scalar passes satisfies a stack-strategy
        rerun without walking the trace at all."""
        from repro.core.sweep import run_functional_passes
        from repro.sim.stackpass import StackPassStats

        configs = self._grid()
        jobs = [(c, tiny_trace, 0) for c in configs]
        cache = PassCache(tmp_path / "pc")
        first = run_functional_passes(jobs, cache=cache)
        stats = StackPassStats()
        rerun_cache = PassCache(tmp_path / "pc")
        second = run_functional_passes(
            jobs, cache=rerun_cache, strategy="stack", stack_stats=stats
        )
        assert stats.walks == 0
        assert stats.derived_streams == 0
        assert rerun_cache.counters.hits == len(jobs)
        for a, b in zip(first, second):
            assert_streams_equal(a, b)

    def test_worker_path_reads_stack_written_cache(
        self, tmp_path, tiny_trace
    ):
        """campaign run --stack-pass precomputes into the cache; the
        workers' cached_fast_simulate must replay those entries to the
        same stats as an uncached fast_simulate."""
        from repro.core.sweep import run_functional_passes

        config = self._grid()[0]
        cache = PassCache(tmp_path / "pc")
        run_functional_passes(
            [(config, tiny_trace, 0)], cache=cache, strategy="stack"
        )
        worker_cache = PassCache(tmp_path / "pc")
        stats = cached_fast_simulate(config, tiny_trace, cache=worker_cache)
        assert worker_cache.counters.hits == 1
        assert stats == fast_simulate(config, tiny_trace)
