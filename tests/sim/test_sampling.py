"""Trace-interval sampling: plans, selections, the stratified estimator.

The guarantees under test:

* a :class:`SamplingPlan` spec string round-trips and every malformed
  spec or out-of-range knob raises :exc:`SamplingError`, never a bare
  ValueError;
* segmentation and clustering survive the degenerate corners — a trace
  shorter than one interval, interval size 1, all-identical intervals
  (k collapses), an empty measured region;
* the whole pipeline is deterministic: one seed, one selection, one
  estimate, bit-identical across recomputation;
* the stratified estimate lands within the plan's error budget on the
  synthetic suite and carries an honest confidence interval — and when
  the interval exceeds the bound the estimate is *refused*, never
  silently returned;
* sampling composes with the pass cache, the stack strategy and the
  sweep drivers without changing any exact-path result.
"""

import dataclasses
import functools
import math
import pickle

import numpy as np
import pytest

from repro.core.sweep import (
    run_blocksize_sweep,
    run_functional_passes,
    run_speed_size_sweep,
)
from repro.errors import SamplingError
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate, functional_pass, replay
from repro.sim.passcache import PassCache
from repro.sim.sampling import (
    SAMPLING_SCHEMA,
    SampledPassGroup,
    SamplingPlan,
    SamplingStats,
    clear_selection_cache,
    estimate_miss_ratio,
    estimate_stats,
    estimate_to_dict,
    representative_streams,
    sampled_fast_simulate,
    sampled_simulate,
    select_intervals,
    validate_group,
)
from repro.sim.telemetry import MetricsRegistry
from repro.trace.record import RefKind, Trace
from repro.trace.suite import build_suite
from repro.units import KB


@pytest.fixture(autouse=True)
def _fresh_selection_cache():
    clear_selection_cache()
    yield
    clear_selection_cache()


def _trace(name="mu3", length=60_000):
    return build_suite(length=length, names=[name])[name]


def _loop_trace(n=600, name="loop"):
    """A perfectly periodic trace: every interval is identical."""
    kinds = [int(RefKind.IFETCH), int(RefKind.LOAD)] * (n // 2)
    addrs = [(i % 8) * 4 for i in range(n)]
    return Trace(kinds, addrs, name=name)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestSamplingPlan:
    @pytest.mark.parametrize("spec", ["", "default", "1", "on", "true"])
    def test_default_specs(self, spec):
        assert SamplingPlan.parse(spec) == SamplingPlan()

    def test_parse_full_spec(self):
        plan = SamplingPlan.parse(
            "interval=5000,k=3,warm=2000,seed=7,ci=0.05,z=2.5,period=2"
        )
        assert plan.interval_refs == 5000
        assert plan.n_clusters == 3
        assert plan.warm_window == 2000
        assert plan.seed == 7
        assert plan.ci_bound == 0.05
        assert plan.confidence_z == 2.5
        assert plan.validate_period == 2

    def test_clusters_alias(self):
        assert SamplingPlan.parse("clusters=4").n_clusters == 4

    def test_default_warm_window_is_one_interval(self):
        plan = SamplingPlan.parse("interval=3000")
        assert plan.warm_refs == -1
        assert plan.warm_window == 3000

    @pytest.mark.parametrize("spec", [
        "nope=1", "interval", "interval=abc", "k=x",
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(SamplingError):
            SamplingPlan.parse(spec)

    @pytest.mark.parametrize("kwargs", [
        {"interval_refs": 0}, {"n_clusters": 0}, {"ci_bound": 0.0},
        {"ci_bound": -1.0}, {"confidence_z": 0.0}, {"validate_period": 0},
    ])
    def test_out_of_range_knobs_raise(self, kwargs):
        with pytest.raises(SamplingError):
            SamplingPlan(**kwargs)

    def test_describe_names_every_lever(self):
        text = SamplingPlan.parse("interval=5000,k=3").describe()
        assert "interval=5000" in text
        assert "k=3" in text
        assert "ci=0.02" in text


# ----------------------------------------------------------------------
# Degenerate inputs (the satellite's corner matrix)
# ----------------------------------------------------------------------
class TestDegenerateInputs:
    def test_trace_shorter_than_one_interval(self):
        trace = _loop_trace(40)
        plan = SamplingPlan(interval_refs=10_000, n_clusters=4)
        selection = select_intervals(trace, plan)
        assert selection.n_intervals == 1
        assert selection.n_clusters == 1
        assert selection.intervals == [(0, 40)]
        # The single representative covers the whole trace exactly.
        config = baseline_config(2 * KB)
        est = sampled_fast_simulate(config, trace, plan)
        exact = fast_simulate(config, trace)
        assert est.read_miss_ratio == pytest.approx(exact.read_miss_ratio)
        assert est.ci_half_width == 0.0
        assert est.stats.cycles == exact.cycles

    def test_interval_size_one(self):
        trace = _loop_trace(24)
        plan = SamplingPlan(interval_refs=1, n_clusters=3)
        selection = select_intervals(trace, plan)
        assert selection.n_intervals == 24
        assert all(stop - start == 1 for start, stop in selection.intervals)
        config = baseline_config(2 * KB)
        est = sampled_fast_simulate(config, trace, plan)
        assert 0.0 <= est.read_miss_ratio <= 1.0

    def test_identical_intervals_collapse_clusters(self):
        trace = _loop_trace(600)
        plan = SamplingPlan(interval_refs=100, n_clusters=5)
        selection = select_intervals(trace, plan)
        assert selection.n_intervals == 6
        # Interval 0 sees the cold first touches; the other five are
        # bit-identical feature vectors and cannot support 4 more
        # clusters — k collapses to the number of distinct points.
        assert selection.n_clusters == 2
        assert sorted(len(c.members) for c in selection.clusters) == [1, 5]

    def test_fully_identical_intervals_collapse_to_one_cluster(self):
        # Warm the cold first period away: every measured interval now
        # has the same mix, the same reuse distances, no new blocks —
        # one cluster remains no matter how large k was asked to be.
        trace = _loop_trace(600).with_warm_boundary(100)
        plan = SamplingPlan(interval_refs=100, n_clusters=5)
        selection = select_intervals(trace, plan)
        assert selection.n_intervals == 5
        assert selection.n_clusters == 1
        assert selection.clusters[0].refs == selection.measured_refs

    def test_empty_measured_region_refused(self):
        trace = _loop_trace(100).with_warm_boundary(100)
        with pytest.raises(SamplingError, match="no measured region"):
            select_intervals(trace, SamplingPlan(interval_refs=10))

    def test_warm_boundary_offsets_segmentation(self):
        trace = _loop_trace(100).with_warm_boundary(30)
        plan = SamplingPlan(interval_refs=50)
        selection = select_intervals(trace, plan)
        assert selection.intervals == [(30, 80), (80, 100)]
        assert selection.measured_refs == 70

    def test_short_tail_interval_kept(self):
        trace = _loop_trace(110)
        selection = select_intervals(trace, SamplingPlan(interval_refs=50))
        assert selection.intervals == [(0, 50), (50, 100), (100, 110)]


# ----------------------------------------------------------------------
# Selections
# ----------------------------------------------------------------------
class TestSelection:
    def test_partition_is_exhaustive_and_exact(self):
        trace = _trace(length=40_000)
        plan = SamplingPlan(interval_refs=4000, n_clusters=4)
        selection = select_intervals(trace, plan)
        assert len(selection.assignment) == selection.n_intervals
        # Every interval lands in exactly one cluster; cluster reference
        # totals add back up to the measured region.
        members = sorted(
            m for c in selection.clusters for m in c.members
        )
        assert members == list(range(selection.n_intervals))
        assert sum(
            c.refs for c in selection.clusters
        ) == selection.measured_refs
        for index, cluster in enumerate(selection.clusters):
            assert cluster.rep in cluster.members
            assert all(
                selection.assignment[m] == index for m in cluster.members
            )

    def test_cluster_mix_counts_match_trace(self):
        trace = _trace(length=20_000)
        selection = select_intervals(
            trace, SamplingPlan(interval_refs=2000, n_clusters=3)
        )
        # The strata cover the measured region, never the warm prefix.
        kinds = np.asarray(trace.kinds)[trace.warm_boundary:]
        assert sum(c.ifetches for c in selection.clusters) == int(
            (kinds == int(RefKind.IFETCH)).sum()
        )
        assert sum(c.loads for c in selection.clusters) == int(
            (kinds == int(RefKind.LOAD)).sum()
        )
        assert sum(c.stores for c in selection.clusters) == int(
            (kinds == int(RefKind.STORE)).sum()
        )

    def test_representatives_carry_warm_prefixes(self):
        trace = _trace(length=30_000)
        plan = SamplingPlan(interval_refs=5000, n_clusters=3)
        selection = select_intervals(trace, plan)
        for cluster, rep_trace in zip(
            selection.clusters, selection.rep_traces
        ):
            start, stop = selection.intervals[cluster.rep]
            # The measured body is the interval; anything before the
            # warm boundary is LRU-unique warm-up context.
            assert len(rep_trace) - rep_trace.warm_boundary == stop - start
            if start > 0:
                assert rep_trace.warm_boundary > 0
            else:
                assert rep_trace.warm_boundary == 0

    def test_selection_is_memoized_by_content(self):
        trace = _trace(length=20_000)
        plan = SamplingPlan(interval_refs=4000)
        stats = SamplingStats()
        first = select_intervals(trace, plan, stats=stats)
        second = select_intervals(trace, plan, stats=stats)
        assert first is second
        assert stats.selections == 2  # counted per use, built once

    def test_selection_ignores_cache_configuration(self):
        # The selection must depend on the trace and plan alone so one
        # serves every organization of a sweep.
        trace = _trace(length=20_000)
        plan = SamplingPlan(interval_refs=4000)
        selection = select_intervals(trace, plan)
        for size in (2 * KB, 64 * KB):
            streams = representative_streams(
                baseline_config(size), selection
            )
            assert len(streams) == selection.n_clusters


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_recomputed_estimate_is_bit_identical(self):
        trace = _trace(length=60_000)
        config = baseline_config(8 * KB)
        plan = SamplingPlan(interval_refs=6000, n_clusters=4)
        first = sampled_fast_simulate(config, trace, plan)
        clear_selection_cache()
        second = sampled_fast_simulate(config, trace, plan)
        assert first.read_miss_ratio == second.read_miss_ratio
        assert first.ci_half_width == second.ci_half_width
        assert first.stats.cycles == second.stats.cycles
        assert first.refs_sampled == second.refs_sampled

    def test_seed_changes_clustering_not_validity(self):
        trace = _trace(length=60_000)
        plan_a = SamplingPlan(interval_refs=6000, n_clusters=4, seed=0)
        plan_b = SamplingPlan(interval_refs=6000, n_clusters=4, seed=3)
        sel_a = select_intervals(trace, plan_a)
        sel_b = select_intervals(trace, plan_b)
        assert sum(
            c.refs for c in sel_a.clusters
        ) == sel_a.measured_refs
        assert sum(
            c.refs for c in sel_b.clusters
        ) == sel_b.measured_refs


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------
class TestEstimator:
    def test_estimate_within_error_budget_on_suite(self):
        plan = SamplingPlan(interval_refs=8000, n_clusters=5)
        for name in ("mu3", "rd2n4"):
            trace = _trace(name, length=120_000)
            for size in (8 * KB, 64 * KB):
                config = baseline_config(size)
                est = sampled_fast_simulate(config, trace, plan)
                exact = fast_simulate(config, trace)
                error = abs(est.read_miss_ratio - exact.read_miss_ratio)
                assert error <= 0.02, (name, size, error)
                assert est.refs_sampled < est.refs_full

    def test_estimate_carries_confidence_interval(self):
        trace = _trace(length=60_000)
        est = sampled_fast_simulate(
            baseline_config(8 * KB), trace,
            SamplingPlan(interval_refs=6000, n_clusters=4),
        )
        assert est.ci_half_width >= 0.0
        assert est.ci_bound == 0.02
        assert est.confidence_z == 1.96
        assert 0.0 <= est.read_miss_ratio <= 1.0

    def test_single_cluster_full_coverage_is_exact(self):
        # One interval == the whole measured region: the "estimate"
        # must reproduce the exact run, with a zero-width interval.
        # (Warm boundary zeroed so the representative needs no
        # approximate warm prefix and covers the trace verbatim.)
        trace = _trace(length=20_000).with_warm_boundary(0)
        config = baseline_config(8 * KB)
        plan = SamplingPlan(interval_refs=20_000, n_clusters=3)
        est = sampled_fast_simulate(config, trace, plan)
        exact = fast_simulate(config, trace)
        assert est.ci_half_width == 0.0
        assert est.read_miss_ratio == pytest.approx(
            exact.read_miss_ratio
        )
        assert est.stats.cycles == exact.cycles

    def test_wide_interval_is_refused(self):
        trace = _trace(length=60_000)
        plan = SamplingPlan(
            interval_refs=2000, n_clusters=2, ci_bound=1e-9
        )
        stats = SamplingStats()
        with pytest.raises(SamplingError, match="refused"):
            sampled_fast_simulate(
                baseline_config(8 * KB), trace, plan, stats=stats
            )
        assert stats.refusals == 1
        assert stats.estimates == 0

    def test_validation_measures_true_error(self):
        trace = _trace(length=60_000)
        plan = SamplingPlan(
            interval_refs=6000, n_clusters=4, validate=True
        )
        stats = SamplingStats()
        est = sampled_fast_simulate(
            baseline_config(8 * KB), trace, plan, stats=stats
        )
        assert est.true_read_miss_ratio is not None
        assert est.true_cycles is not None
        assert est.abs_error == pytest.approx(
            abs(est.true_read_miss_ratio - est.read_miss_ratio)
        )
        assert stats.validations == 1
        assert stats.true_error_max == pytest.approx(est.abs_error)

    def test_estimate_to_dict_schema(self):
        trace = _trace(length=20_000)
        est = sampled_fast_simulate(
            baseline_config(8 * KB), trace,
            SamplingPlan(interval_refs=4000, n_clusters=3),
        )
        doc = estimate_to_dict(est)
        assert doc["schema"] == SAMPLING_SCHEMA
        assert doc["trace"] == trace.name
        assert doc["refs_full"] == len(trace)
        assert doc["refs_reduction"] == pytest.approx(
            est.refs_full / est.refs_sampled
        )
        assert doc["true_read_miss_ratio"] is None

    def test_validate_group_matches_exact_pass(self):
        trace = _trace(length=30_000)
        config = baseline_config(8 * KB)
        plan = SamplingPlan(interval_refs=6000, n_clusters=3)
        selection = select_intervals(trace, plan)
        streams = representative_streams(config, selection)
        group = SampledPassGroup(selection=selection, streams=streams)
        stats = SamplingStats()
        error = validate_group(config, trace, group, stats=stats)
        exact = functional_pass(config, trace)
        reads = exact.icache.reads + exact.dcache.reads
        true_ratio = (
            exact.icache.read_misses + exact.dcache.read_misses
        ) / reads
        assert error == pytest.approx(abs(
            true_ratio - estimate_miss_ratio(selection, streams)
        ))
        assert stats.validations == 1


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------
class TestSamplingStats:
    def test_merge_sums_counters_and_maxes_error(self):
        a = SamplingStats(selections=1, refs_sampled=10,
                          validations=1, true_error_max=0.01)
        b = SamplingStats(selections=2, refs_sampled=5,
                          validations=1, true_error_max=0.03)
        a.merge(b)
        assert a.selections == 3
        assert a.refs_sampled == 15
        assert a.validations == 2
        assert a.true_error_max == 0.03

    def test_publish_mirrors_counters(self):
        registry = MetricsRegistry()
        stats = SamplingStats(selections=2, representatives=6,
                              refs_full=100, refs_sampled=40,
                              estimates=2)
        stats.publish(registry)
        assert registry.counters["sampling.selections"] == 2
        assert registry.counters["sampling.refs_sampled"] == 40
        # No validations ran: the error gauge must stay unset rather
        # than publishing a misleading 0.0.
        assert "sampling.true_error_max" not in registry.gauges

    def test_publish_gauges_error_after_validation(self):
        registry = MetricsRegistry()
        stats = SamplingStats()
        stats.note_error(0.004)
        stats.publish(registry)
        assert registry.gauges["sampling.true_error_max"] == \
            pytest.approx(0.004)


# ----------------------------------------------------------------------
# Composition: pass cache, stack strategy, sweeps, campaign runner
# ----------------------------------------------------------------------
class TestComposition:
    def test_pass_cache_round_trip(self, tmp_path):
        trace = _trace(length=30_000)
        config = baseline_config(8 * KB)
        plan = SamplingPlan(interval_refs=6000, n_clusters=3)
        cache = PassCache(tmp_path / "cache")
        first = sampled_fast_simulate(config, trace, plan, cache=cache)
        assert cache.disk_stats()["entries"] > 0
        clear_selection_cache()
        second = sampled_fast_simulate(config, trace, plan, cache=cache)
        assert first.read_miss_ratio == second.read_miss_ratio
        assert first.stats.cycles == second.stats.cycles

    def test_run_functional_passes_sampling_groups(self):
        trace = _trace(length=30_000)
        plan = SamplingPlan(interval_refs=6000, n_clusters=3)
        configs = [baseline_config(4 * KB), baseline_config(16 * KB)]
        stats = SamplingStats()
        groups = run_functional_passes(
            [(config, trace, 0) for config in configs],
            sampling=plan, sampling_stats=stats,
        )
        assert len(groups) == 2
        for group in groups:
            assert isinstance(group, SampledPassGroup)
            assert len(group.streams) == group.selection.n_clusters
        assert stats.selections == 2
        assert stats.representatives == sum(
            g.selection.n_clusters for g in groups
        )

    def test_sampling_composes_with_stack_strategy(self):
        trace = _trace(length=30_000)
        plan = SamplingPlan(interval_refs=6000, n_clusters=3)
        configs = [baseline_config(4 * KB), baseline_config(16 * KB)]
        jobs = [(config, trace, 0) for config in configs]
        scalar = run_functional_passes(jobs, sampling=plan)
        clear_selection_cache()
        stack = run_functional_passes(
            jobs, sampling=plan, strategy="stack"
        )
        # Strategy only changes how representative streams are derived,
        # never what they contain.
        for s_group, k_group in zip(scalar, stack):
            for s, k in zip(s_group.streams, k_group.streams):
                assert s.icache.read_misses == k.icache.read_misses
                assert s.dcache.read_misses == k.dcache.read_misses
                assert s.n_refs_measured == k.n_refs_measured

    def test_speed_size_sweep_sampled_estimates_track_exact(self):
        suite = build_suite(length=60_000, names=["mu3", "rd2n4"])
        sizes = [8 * KB, 32 * KB]
        cycles = [40.0]
        exact = run_speed_size_sweep(suite, sizes, cycles)
        plan = SamplingPlan(interval_refs=6000, n_clusters=4)
        stats = SamplingStats()
        sampled = run_speed_size_sweep(
            suite, sizes, cycles, sampling=plan, sampling_stats=stats
        )
        assert stats.estimates > 0
        assert stats.refs_sampled < stats.refs_full
        assert sampled.total_sizes == exact.total_sizes
        miss_gap = np.abs(
            sampled.read_miss_ratio - exact.read_miss_ratio
        )
        assert miss_gap.max() <= 0.03, miss_gap
        # Execution time compounds miss-ratio error with write-buffer
        # contention; tiny 60k-ref traces sit well above the paper-suite
        # operating point, so only coarse tracking is asserted here (the
        # tight 2% bar is pinned on full-length traces above and in CI).
        exec_gap = np.abs(
            sampled.execution_ns / exact.execution_ns - 1.0
        )
        assert exec_gap.max() <= 0.20, exec_gap

    def test_blocksize_sweep_sampled_estimates_track_exact(self):
        suite = build_suite(length=60_000, names=["mu3"])
        blocks = [4, 8]
        exact = run_blocksize_sweep(
            suite, block_sizes_words=blocks, latencies_ns=[260.0],
            transfer_rates=[1.0],
        )
        plan = SamplingPlan(interval_refs=6000, n_clusters=4)
        sampled = run_blocksize_sweep(
            suite, block_sizes_words=blocks, latencies_ns=[260.0],
            transfer_rates=[1.0], sampling=plan,
        )
        assert set(sampled) == set(exact)
        for key, exact_curve in exact.items():
            sampled_curve = sampled[key]
            gap = np.abs(
                sampled_curve.load_miss_ratio
                - exact_curve.load_miss_ratio
            )
            assert gap.max() <= 0.08, (key, gap)

    def test_sweep_validation_counts_periodic_checks(self):
        suite = build_suite(length=30_000, names=["mu3", "rd2n4"])
        plan = SamplingPlan(
            interval_refs=6000, n_clusters=3,
            validate=True, validate_period=1,
        )
        stats = SamplingStats()
        run_speed_size_sweep(
            suite, [8 * KB], [40.0], sampling=plan, sampling_stats=stats
        )
        assert stats.validations == 2  # one per job at period 1
        assert stats.true_error_max < 0.05

    def test_sampled_simulate_is_picklable_and_returns_stats(self):
        runner = functools.partial(
            sampled_simulate, plan_spec="interval=6000,k=3"
        )
        rebuilt = pickle.loads(pickle.dumps(runner))
        trace = _trace(length=30_000)
        stats = rebuilt(baseline_config(8 * KB), trace)
        assert stats.trace_name == trace.name
        # SimStats counts the measured region, like every exact run.
        assert stats.n_refs == len(trace) - trace.warm_boundary
        assert 0.0 <= stats.read_miss_ratio <= 1.0

    def test_sampled_simulate_validate_flag(self):
        trace = _trace(length=30_000)
        stats = sampled_simulate(
            baseline_config(8 * KB), trace,
            plan_spec="interval=6000,k=3", validate=True,
        )
        assert stats.n_refs == len(trace) - trace.warm_boundary
