"""Campaign persistence: round trips, caching, fingerprints."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.campaign import (
    Campaign,
    payload_checksum,
    run_id,
    stats_from_dict,
    stats_to_dict,
)
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.units import KB


class TestFingerprints:
    def test_same_inputs_same_id(self, mu3_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        assert run_id(config, mu3_small) == run_id(config, mu3_small)

    def test_config_changes_id(self, mu3_small):
        a = baseline_config(cache_size_bytes=4 * KB)
        b = baseline_config(cache_size_bytes=8 * KB)
        assert run_id(a, mu3_small) != run_id(b, mu3_small)

    def test_cycle_time_changes_id(self, mu3_small):
        a = baseline_config(cache_size_bytes=4 * KB)
        assert run_id(a, mu3_small) != run_id(
            a.with_cycle_ns(20.0), mu3_small
        )

    def test_trace_changes_id(self, mu3_small, rd2n4_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        assert run_id(config, mu3_small) != run_id(config, rd2n4_small)


class TestSerialization:
    def test_round_trip(self, mu3_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        stats = fast_simulate(config, mu3_small)
        back = stats_from_dict(stats_to_dict(stats))
        assert back == stats

    def test_unknown_fields_are_collected_not_swallowed(self, mu3_small):
        """Regression: keys from a newer schema used to be dropped
        silently; they must be recorded in the ``unknown`` collector."""
        config = baseline_config(cache_size_bytes=4 * KB)
        payload = stats_to_dict(fast_simulate(config, mu3_small))
        payload["frobnication"] = 7
        payload["icache"]["victim_hits"] = 0

        dropped = []
        back = stats_from_dict(payload, unknown=dropped)
        assert sorted(dropped) == ["frobnication", "icache.victim_hits"]
        assert back == fast_simulate(config, mu3_small)

        # without a collector the behaviour is unchanged: tolerant load
        assert stats_from_dict(payload) == back


class TestFsckSchemaDrift:
    def test_fsck_reports_unknown_fields(self, tmp_path, mu3_small):
        import json

        campaign = Campaign(tmp_path / "runs")
        config = baseline_config(cache_size_bytes=4 * KB)
        campaign.run(config, mu3_small, fast_simulate)
        path = campaign.directory / f"{run_id(config, mu3_small)}.json"

        # emulate a result written by a newer schema: extra keys, with
        # the checksum recomputed so the file still validates
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["stats"]["dcache"]["victim_hits"] = 3
        payload["checksum"] = payload_checksum(payload["stats"])
        path.write_text(json.dumps(payload), encoding="utf-8")

        report = campaign.fsck()
        assert report.clean  # drift is not corruption
        assert report.unknown_fields == [
            (path.name, "dcache.victim_hits")
        ]
        assert "unknown field" in report.render()


class TestCampaign:
    def test_run_simulates_then_caches(self, tmp_path, mu3_small):
        campaign = Campaign(tmp_path / "runs")
        config = baseline_config(cache_size_bytes=4 * KB)
        calls = []

        def simulate_fn(cfg, trace):
            calls.append(1)
            return fast_simulate(cfg, trace)

        first = campaign.run(config, mu3_small, simulate_fn)
        second = campaign.run(config, mu3_small, simulate_fn)
        assert len(calls) == 1
        assert first == second
        assert len(campaign) == 1

    def test_results_iterates_everything(self, tmp_path, mu3_small):
        campaign = Campaign(tmp_path / "runs")
        for size in (4 * KB, 8 * KB):
            campaign.run(
                baseline_config(cache_size_bytes=size), mu3_small,
                fast_simulate,
            )
        assert len(list(campaign.results())) == 2

    def test_missing_run_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Campaign(tmp_path / "runs").load("nope")

    def test_survives_reopen(self, tmp_path, mu3_small):
        config = baseline_config(cache_size_bytes=4 * KB)
        stats = Campaign(tmp_path / "runs").run(
            config, mu3_small, fast_simulate
        )
        reopened = Campaign(tmp_path / "runs")
        identifier = run_id(config, mu3_small)
        assert identifier in reopened
        assert reopened.load(identifier) == stats
