"""Statistics containers: snapshots and derived metrics."""

import pytest

from repro.sim.statistics import BufferCounters, CacheCounters, SimStats


class TestCacheCounters:
    def test_snapshot_is_independent(self):
        counters = CacheCounters(reads=5)
        snap = counters.snapshot()
        counters.reads = 10
        assert snap.reads == 5

    def test_since(self):
        counters = CacheCounters(reads=10, read_misses=4)
        snap = CacheCounters(reads=6, read_misses=1)
        delta = counters.since(snap)
        assert delta.reads == 4
        assert delta.read_misses == 3

    def test_miss_ratio(self):
        assert CacheCounters(reads=10, read_misses=2).read_miss_ratio == 0.2
        assert CacheCounters().read_miss_ratio == 0.0

    def test_write_miss_ratio(self):
        counters = CacheCounters(writes=8, write_misses=2)
        assert counters.write_miss_ratio == 0.25

    def test_write_miss_ratio_zero_writes_is_zero(self):
        assert CacheCounters(write_misses=3).write_miss_ratio == 0.0


class TestBufferCounters:
    def test_stalls_per_push(self):
        counters = BufferCounters(pushes=10, full_stalls=3, match_stalls=2)
        assert counters.stalls_per_push == pytest.approx(0.5)

    def test_stalls_per_push_unused_buffer_is_zero(self):
        assert BufferCounters(full_stalls=4).stalls_per_push == 0.0


def make_stats(**kw):
    defaults = dict(
        trace_name="t", config_summary="c", cycle_ns=40.0,
        cycles=1000, total_cycles=1500, warm_cycles=500,
        n_refs=400, n_couplets=300,
        icache=CacheCounters(reads=200, read_misses=10, fetched_words=40),
        dcache=CacheCounters(
            reads=100, read_misses=20, writes=100, write_misses=30,
            bypass_writes=30, fetched_words=80, writeback_blocks=5,
            writeback_words_full=20, writeback_words_dirty=8,
        ),
    )
    defaults.update(kw)
    return SimStats(**defaults)


class TestSimStats:
    def test_read_aggregates(self):
        stats = make_stats()
        assert stats.reads == 300
        assert stats.read_misses == 30
        assert stats.read_miss_ratio == pytest.approx(0.1)

    def test_per_cache_ratios(self):
        stats = make_stats()
        assert stats.ifetch_miss_ratio == pytest.approx(0.05)
        assert stats.load_miss_ratio == pytest.approx(0.2)

    def test_traffic_ratios(self):
        stats = make_stats()
        assert stats.read_traffic_ratio == pytest.approx(120 / 300)
        assert stats.write_traffic_ratio_full == pytest.approx((20 + 30) / 400)
        assert stats.write_traffic_ratio_dirty == pytest.approx((8 + 30) / 400)

    def test_execution_time(self):
        stats = make_stats()
        assert stats.execution_time_ns == pytest.approx(40_000.0)
        assert stats.cycles_per_reference == pytest.approx(2.5)

    def test_zero_refs_safe(self):
        stats = make_stats(n_refs=0)
        assert stats.cycles_per_reference == 0.0
        assert stats.write_traffic_ratio_full == 0.0

    def test_write_miss_ratio_delegates_to_dcache(self):
        stats = make_stats()
        assert stats.write_miss_ratio == pytest.approx(0.3)
        assert stats.write_miss_ratio == stats.dcache.write_miss_ratio

    def test_memory_utilization(self):
        stats = make_stats(memory_busy_cycles=250)
        assert stats.memory_utilization == pytest.approx(0.25)

    def test_memory_utilization_zero_cycles_is_zero(self):
        stats = make_stats(cycles=0, memory_busy_cycles=0)
        assert stats.memory_utilization == 0.0

    def test_zero_reads_ratios_safe(self):
        stats = make_stats(
            icache=CacheCounters(), dcache=CacheCounters()
        )
        assert stats.read_miss_ratio == 0.0
        assert stats.write_miss_ratio == 0.0
        assert stats.read_traffic_ratio == 0.0
