"""Physical-cache mode: TLB + page walks through the engine."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import TranslationSpec, baseline_config
from repro.sim.engine import Engine, simulate
from repro.sim.fastpath import check_fastpath_supported
from repro.trace.record import RefKind, Trace
from repro.units import KB

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def trace_of(refs, warm=0):
    kinds = [k for k, _a, _p in refs]
    addrs = [a for _k, a, _p in refs]
    pids = [p for _k, _a, p in refs]
    return Trace(kinds, addrs, pids, warm_boundary=warm)


def physical_config(**kw):
    spec = TranslationSpec(page_words=1024, tlb_entries=4, **kw)
    return baseline_config(cache_size_bytes=4 * KB).with_translation(spec)


class TestTiming:
    def test_tlb_miss_pays_a_page_walk(self):
        # Single ifetch: cold TLB -> one 1-word page-table read (7
        # cycles at 40ns: 1 addr + 5 latency + 1 transfer), recovery 3,
        # then the cache miss read starts at 10 and finishes at 20.
        stats = simulate(physical_config(), trace_of([(I, 0, 1)]))
        assert stats.cycles == 20

    def test_tlb_hit_is_free(self):
        # Second ifetch in the same page and cache block: pure hit.
        stats = simulate(
            physical_config(), trace_of([(I, 0, 1), (I, 1, 1)])
        )
        assert stats.cycles == 21

    def test_walk_reads_configurable(self):
        zero = simulate(
            physical_config(walk_memory_reads=0), trace_of([(I, 0, 1)])
        )
        two = simulate(
            physical_config(walk_memory_reads=2), trace_of([(I, 0, 1)])
        )
        assert zero.cycles == 10  # translation overlapped entirely
        assert two.cycles > 20


class TestSharing:
    def test_physical_cache_shares_between_pids(self):
        """Two processes touching the same physical page hit each
        other's cache lines — impossible in the virtual-cache mode."""
        config = physical_config()
        engine = Engine(config)
        # Force both pids' page 0 onto one frame by mapping pid 2 first
        # and reusing the mapper's determinism: instead, simply check
        # that a *single* pid's warm data stays warm across a pid switch
        # of unrelated pages, and that the TLB distinguished the pids.
        trace = trace_of([(L, 0, 1), (L, 0, 1), (L, 0, 2), (L, 0, 2)])
        stats = engine.run(trace)
        translator = engine.translator
        assert translator is not None
        assert translator.tlb.accesses == 4
        assert translator.tlb.misses == 2  # one per pid
        # Different frames -> both pids miss once in the cache.
        assert stats.dcache.read_misses == 2

    def test_mapper_scatters_virtually_adjacent_pages(self):
        config = physical_config()
        engine = Engine(config)
        trace = trace_of([(L, 0, 1), (L, 1024, 1), (L, 2048, 1)])
        engine.run(trace)
        assert engine.translator.mapper.pages_mapped == 3


class TestFastpathRejection:
    def test_translation_requires_engine(self):
        with pytest.raises(ConfigurationError):
            check_fastpath_supported(physical_config())


class TestOnRealTrace:
    def test_physical_mode_runs_and_costs_more(self, mu3_small):
        virtual = baseline_config(cache_size_bytes=8 * KB)
        physical = virtual.with_translation(
            TranslationSpec(tlb_entries=32)
        )
        v_stats = simulate(virtual, mu3_small)
        p_stats = simulate(physical, mu3_small)
        # Page walks cost cycles; a 32-entry TLB cannot hide everything
        # in a multiprogrammed mix.
        assert p_stats.cycles > v_stats.cycles

    def test_larger_tlb_helps(self, mu3_small):
        small = baseline_config(cache_size_bytes=8 * KB).with_translation(
            TranslationSpec(tlb_entries=8)
        )
        large = baseline_config(cache_size_bytes=8 * KB).with_translation(
            TranslationSpec(tlb_entries=256)
        )
        assert (
            simulate(large, mu3_small).cycles
            <= simulate(small, mu3_small).cycles
        )
