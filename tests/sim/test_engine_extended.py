"""Extended engine coverage: write-allocate, three levels, utilization."""


from repro.core.geometry import CacheGeometry
from repro.core.policy import CachePolicy, ReplacementKind, WriteMissPolicy
from repro.core.timing import MemoryTiming
from repro.sim.config import LowerLevelSpec, baseline_config
from repro.sim.engine import simulate
from repro.trace.record import RefKind, Trace
from repro.units import KB

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def trace_of(refs, warm=0):
    kinds = [k for k, _a in refs]
    addrs = [a for _k, a in refs]
    return Trace(kinds, addrs, [1] * len(refs), warm_boundary=warm)


class TestWriteAllocate:
    def _config(self):
        policy = CachePolicy(
            write_miss=WriteMissPolicy.FETCH_ON_WRITE,
            replacement=ReplacementKind.RANDOM,
        )
        return baseline_config(cache_size_bytes=4 * KB).with_policy(policy)

    def test_write_miss_fetches_then_writes(self):
        # Write-allocate miss: block read (10 cycles at 40ns) plus one
        # data cycle.
        stats = simulate(self._config(), trace_of([(S, 0)]))
        assert stats.cycles == 11
        assert stats.dcache.write_misses == 1
        assert stats.dcache.fetched_words == 4

    def test_subsequent_load_hits(self):
        stats = simulate(self._config(), trace_of([(S, 0), (L, 1)]))
        assert stats.cycles == 12
        assert stats.dcache.read_misses == 0

    def test_dirty_victim_from_write_allocate(self):
        # 4KB DM cache = 1024 words; stores to 0 and 1024 collide.
        stats = simulate(
            self._config(), trace_of([(S, 0), (S, 1024)])
        )
        assert stats.dcache.writeback_blocks == 1
        assert stats.dcache.writeback_words_dirty == 1


class TestThreeLevels:
    def _config(self):
        l2 = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=32 * KB, block_words=8),
            port=MemoryTiming(latency_ns=40.0, transfer_rate=1.0,
                              write_op_ns=0.0, recovery_ns=0.0),
        )
        l3 = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=256 * KB, block_words=16),
            port=MemoryTiming(latency_ns=80.0, transfer_rate=1.0,
                              write_op_ns=0.0, recovery_ns=0.0),
        )
        return baseline_config(
            cache_size_bytes=2 * KB, cycle_ns=20.0
        ).with_levels((l2, l3))

    def test_three_level_miss_path(self):
        stats = simulate(self._config(), trace_of([(I, 0)]))
        # L1 miss -> L2 miss -> L3 miss -> memory; each level adds its
        # address/latency/transfer; the exact count just needs to be
        # deterministic and beyond a single-level miss.
        single = simulate(
            baseline_config(cache_size_bytes=2 * KB, cycle_ns=20.0),
            trace_of([(I, 0)]),
        )
        assert stats.cycles > single.cycles

    def test_refill_from_l2_cheaper_than_memory(self):
        # Touch block 0, evict it from the 2KB L1 with same-set strided
        # reads (stride = L1 size), then re-touch.  Measure only the
        # re-touch via the warm boundary: the hierarchy refills it from
        # L2, far cheaper than the memory refill the flat machine pays.
        refs = [(I, 0)] + [(I, 512 * k) for k in range(1, 20)] + [(I, 0)]
        warm = len(refs) - 1
        deep = simulate(self._config(), trace_of(refs, warm=warm))
        flat = simulate(
            baseline_config(cache_size_bytes=2 * KB, cycle_ns=20.0),
            trace_of(refs, warm=warm),
        )
        assert deep.icache.read_misses == 1
        assert flat.icache.read_misses == 1
        assert deep.cycles < flat.cycles

    def test_lower_counters_reported_for_first_level_below(self):
        stats = simulate(self._config(), trace_of([(I, 0), (I, 1)]))
        assert stats.lower is not None
        assert stats.lower.reads == 1


class TestMemoryUtilization:
    def test_busy_cycles_bounded_by_total(self, mu3_small):
        stats = simulate(
            baseline_config(cache_size_bytes=2 * KB), mu3_small
        )
        assert 0 < stats.memory_busy_cycles
        # Busy time cannot exceed wall-clock including warm-up.
        assert stats.memory_busy_cycles <= stats.total_cycles

    def test_small_caches_keep_memory_busier(self, mu3_small):
        small = simulate(
            baseline_config(cache_size_bytes=2 * KB), mu3_small
        )
        large = simulate(
            baseline_config(cache_size_bytes=64 * KB), mu3_small
        )
        small_util = small.memory_busy_cycles / small.total_cycles
        large_util = large.memory_busy_cycles / large.total_cycles
        assert small_util > large_util
