"""Stack-pass validation: bit-equality with per-organization passes.

The single-walk stack simulator's license to exist is exactness: every
EventStream it derives must be *bit-identical* to the one
``functional_pass`` produces for the same organization — scalars, all
nine event buffers, and warm-measured counters.  These tests pin that
across LRU grids, the degenerate corners the set-refinement collapses
onto (direct-mapped, fully-associative, zero-event and exhausted-warm
streams), randomized ``(size, assoc, block)`` matrices, and the
explicit fallback path for organizations the walk cannot share.
"""

import random

import pytest

from repro.core.geometry import CacheGeometry
from repro.core.policy import CachePolicy, ReplacementKind
from repro.core.sweep import run_functional_passes
from repro.errors import AnalysisError, ConfigurationError
from repro.sim.config import baseline_config
from repro.sim.fastpath import (
    EVENT_FIELDS,
    fast_simulate,
    functional_pass,
)
from repro.sim.stackpass import (
    StackPassStats,
    stack_fast_simulate,
    stack_functional_passes,
    stack_supported,
)
from repro.trace.record import RefKind, Trace
from repro.units import KB

_STREAM_SCALARS = (
    "trace_name", "config_summary", "i_block_words", "d_block_words",
    "n_couplets", "n_couplets_measured", "n_refs_measured",
    "warm_event_index", "warm_base_offset", "end_base", "n_events",
)


def assert_streams_equal(a, b):
    for name in _STREAM_SCALARS:
        assert getattr(a, name) == getattr(b, name), name
    for name in EVENT_FIELDS:
        assert list(getattr(a, name)) == list(getattr(b, name)), name
    assert a.icache == b.icache
    assert a.dcache == b.dcache


def assert_stats_equal(a, b):
    assert a.cycles == b.cycles
    assert a.total_cycles == b.total_cycles
    assert a.warm_cycles == b.warm_cycles
    assert a.icache == b.icache
    assert a.dcache == b.dcache
    assert a.buffer == b.buffer
    assert a.memory_reads == b.memory_reads
    assert a.memory_writes == b.memory_writes


def lru_config(size_bytes, assoc=1, block_words=4, **kwargs):
    return baseline_config(
        cache_size_bytes=size_bytes, assoc=assoc, block_words=block_words,
        replacement=ReplacementKind.LRU, **kwargs,
    )


class TestGridEquality:
    def test_lru_grid_one_walk(self, mu3_small):
        """A full (size x assoc x block) LRU grid derives from 1 walk,
        bit-identical to per-organization functional passes."""
        configs = [
            lru_config(size * KB, assoc=assoc, block_words=block)
            for size in (2, 8)
            for assoc in (1, 2, 4)
            for block in (2, 8)
        ]
        stats = StackPassStats()
        streams = run_functional_passes(
            [(c, mu3_small, 0) for c in configs],
            strategy="stack", stack_stats=stats,
        )
        assert stats.walks == 1
        assert stats.fallback_passes == 0
        assert stats.derived_streams + stats.reused_streams == len(configs)
        for config, stream in zip(configs, streams):
            assert_streams_equal(stream, functional_pass(config, mu3_small))

    def test_direct_mapped_random_is_eligible(self, rd2n4_small):
        """assoc=1 leaves RANDOM replacement no victim choice, so the
        paper's default sweeps share the walk — and the seed cannot
        matter, exactly as it cannot for the scalar pass."""
        configs = [baseline_config(cache_size_bytes=s * KB) for s in (2, 4, 8)]
        assert all(stack_supported(c) for c in configs)
        for seed in (0, 7):
            stats = StackPassStats()
            streams = run_functional_passes(
                [(c, rd2n4_small, seed) for c in configs],
                strategy="stack", stack_stats=stats,
            )
            assert stats.walks == 1 and stats.fallback_passes == 0
            for config, stream in zip(configs, streams):
                assert_streams_equal(
                    stream, functional_pass(config, rd2n4_small, seed=seed)
                )

    def test_temporal_variants_share_one_derivation(self, tiny_trace):
        """Configs differing only in cycle time reuse the derived
        stream; only the labels are re-stamped."""
        configs = [
            lru_config(4 * KB, cycle_ns=cycle) for cycle in (20.0, 40.0, 80.0)
        ]
        stats = StackPassStats()
        streams = run_functional_passes(
            [(c, tiny_trace, 0) for c in configs],
            strategy="stack", stack_stats=stats,
        )
        assert stats.derived_streams == 1
        assert stats.reused_streams == 2
        for config, stream in zip(configs, streams):
            assert stream.config_summary == config.describe()
            assert_streams_equal(stream, functional_pass(config, tiny_trace))

    def test_mixed_traces_one_walk_each(self, mu3_small, rd2n4_small):
        configs = [lru_config(s * KB) for s in (2, 8)]
        jobs = [
            (config, trace, 0)
            for trace in (mu3_small, rd2n4_small)
            for config in configs
        ]
        stats = StackPassStats()
        streams = run_functional_passes(
            jobs, strategy="stack", stack_stats=stats
        )
        assert stats.walks == 2  # one per distinct trace
        for (config, trace, _seed), stream in zip(jobs, streams):
            assert_streams_equal(stream, functional_pass(config, trace))


class TestDegenerateCorners:
    """Satellite: the corners the set-refinement collapses onto."""

    @pytest.mark.parametrize("replacement", list(ReplacementKind))
    def test_fully_associative_single_set(self, tiny_trace, replacement):
        """size == block_bytes * assoc gives n_sets == 1; under LRU the
        whole cache is one stack (multi-way FIFO/RANDOM fall back but
        must still match their scalar pass)."""
        assoc = 4
        config = baseline_config(
            cache_size_bytes=4 * 4 * assoc, block_words=4, assoc=assoc,
            replacement=replacement,
        )
        assert config.l1.i_geometry.n_sets == 1
        stats = StackPassStats()
        stream = run_functional_passes(
            [(config, tiny_trace, 0)], strategy="stack", stack_stats=stats,
        )[0]
        assert_streams_equal(stream, functional_pass(config, tiny_trace))
        if replacement is ReplacementKind.LRU:
            assert stats.walks == 1 and stats.fallback_passes == 0
        else:
            assert stats.walks == 0 and stats.fallback_passes == 1

    @pytest.mark.parametrize("replacement", list(ReplacementKind))
    def test_direct_mapped_every_policy(self, tiny_trace, replacement):
        config = baseline_config(
            cache_size_bytes=2 * KB, replacement=replacement
        )
        assert stack_supported(config)
        stream = stack_functional_passes([(config, tiny_trace, 0)])[0]
        assert_streams_equal(stream, functional_pass(config, tiny_trace))

    def test_empty_trace_raises_like_scalar(self):
        empty = Trace([], [], name="empty", warm_boundary=0)
        config = lru_config(4 * KB)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            functional_pass(config, empty)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            stack_functional_passes([(config, empty, 0)])

    def test_exhausted_warm_boundary_raises_like_scalar(self):
        kinds = [int(RefKind.IFETCH)] * 50
        addrs = list(range(50))
        full_warm = Trace(kinds, addrs, name="warm", warm_boundary=50)
        config = lru_config(4 * KB)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            functional_pass(config, full_warm)
        with pytest.raises(ConfigurationError, match="warm boundary"):
            stack_functional_passes([(config, full_warm, 0)])

    def test_zero_event_measured_region(self):
        """A loop that fits in cache: every post-warm couplet hits, so
        the measured region has zero events — the stream and its replay
        must still match the scalar pass exactly."""
        kinds, addrs = [], []
        for _rep in range(40):
            for word in range(16):
                kinds.append(int(RefKind.IFETCH))
                addrs.append(word)
        trace = Trace(kinds, addrs, name="resident", warm_boundary=320)
        config = lru_config(4 * KB)
        scalar = functional_pass(config, trace)
        stack = stack_functional_passes([(config, trace, 0)])[0]
        assert_streams_equal(stack, scalar)
        assert stack.warm_event_index == stack.n_events  # no measured events
        assert_stats_equal(
            fast_simulate(config, trace),
            stack_fast_simulate(config, trace),
        )


class TestFallback:
    def test_multiway_random_falls_back(self, tiny_trace):
        """Multi-way RANDOM breaks inclusion; the strategy must run the
        per-organization scalar pass and count it explicitly."""
        eligible = baseline_config(cache_size_bytes=4 * KB)
        ineligible = baseline_config(cache_size_bytes=4 * KB, assoc=2)
        assert not stack_supported(ineligible)
        stats = StackPassStats()
        streams = run_functional_passes(
            [(eligible, tiny_trace, 5), (ineligible, tiny_trace, 5)],
            strategy="stack", stack_stats=stats,
        )
        assert stats.walks == 1
        assert stats.fallback_passes == 1
        assert_streams_equal(
            streams[0], functional_pass(eligible, tiny_trace, seed=5)
        )
        assert_streams_equal(
            streams[1], functional_pass(ineligible, tiny_trace, seed=5)
        )

    def test_multiway_fifo_falls_back(self, tiny_trace):
        config = baseline_config(
            cache_size_bytes=4 * KB, assoc=2,
            replacement=ReplacementKind.FIFO,
        )
        assert not stack_supported(config)
        stats = StackPassStats()
        stream = run_functional_passes(
            [(config, tiny_trace, 0)], strategy="stack", stack_stats=stats,
        )[0]
        assert stats.fallback_passes == 1 and stats.walks == 0
        assert_streams_equal(stream, functional_pass(config, tiny_trace))

    def test_engine_only_config_not_supported(self):
        from repro.core.policy import WritePolicy

        config = baseline_config(cache_size_bytes=4 * KB).with_policy(
            CachePolicy(write_policy=WritePolicy.WRITE_THROUGH)
        )
        assert not stack_supported(config)

    def test_stack_pass_rejects_ineligible_jobs(self, tiny_trace):
        config = baseline_config(cache_size_bytes=4 * KB, assoc=2)
        with pytest.raises(ConfigurationError, match="not stack-eligible"):
            stack_functional_passes([(config, tiny_trace, 0)])

    def test_unknown_strategy_rejected(self, tiny_trace):
        config = baseline_config(cache_size_bytes=4 * KB)
        with pytest.raises(AnalysisError, match="strategy"):
            run_functional_passes(
                [(config, tiny_trace, 0)], strategy="quantum"
            )


class TestRandomizedMatrix:
    """Satellite: property-style cross-check over random grids."""

    def test_random_grids_bit_identical(self, mu3_small, tiny_trace):
        rng = random.Random(1988)
        traces = [tiny_trace, mu3_small]
        for round_index in range(12):
            trace = traces[round_index % 2]
            replacement = rng.choice(list(ReplacementKind))
            configs = []
            for _ in range(4):
                block = rng.choice((1, 2, 4, 8))
                assoc = rng.choice((1, 2, 4))
                sets = rng.choice((8, 32, 128))
                configs.append(baseline_config(
                    cache_size_bytes=sets * block * 4 * assoc,
                    block_words=block, assoc=assoc,
                    replacement=replacement,
                ))
            seed = rng.randrange(1000)
            stats = StackPassStats()
            streams = run_functional_passes(
                [(c, trace, seed) for c in configs],
                strategy="stack", stack_stats=stats,
            )
            expected_fallbacks = sum(
                1 for c in configs if not stack_supported(c)
            )
            assert stats.fallback_passes == expected_fallbacks
            assert stats.walks == (1 if expected_fallbacks < 4 else 0)
            for config, stream in zip(configs, streams):
                assert_streams_equal(
                    stream, functional_pass(config, trace, seed=seed)
                )

    def test_random_points_match_fast_simulate(self, rd2n4_small):
        """End-to-end: stack-derived runs price identically to
        fast_simulate, not just stream-equal."""
        rng = random.Random(42)
        for _ in range(6):
            block = rng.choice((2, 4, 8))
            assoc = rng.choice((1, 2))
            config = baseline_config(
                cache_size_bytes=rng.choice((2, 8, 32)) * KB,
                block_words=block, assoc=assoc,
                cycle_ns=rng.choice((20.0, 40.0, 80.0)),
                replacement=ReplacementKind.LRU,
            )
            stats = StackPassStats()
            assert_stats_equal(
                fast_simulate(config, rd2n4_small),
                stack_fast_simulate(config, rd2n4_small, stats=stats),
            )
            assert stats.fallback_passes == 0


class TestStats:
    def test_merge_and_dict(self):
        a = StackPassStats(walks=1, derived_streams=3, reused_streams=2,
                           fallback_passes=1)
        b = StackPassStats(walks=2, derived_streams=1)
        a.merge(b)
        assert a.as_dict() == {
            "walks": 3, "derived_streams": 4, "reused_streams": 2,
            "fallback_passes": 1,
        }

    def test_publish_to_registry(self):
        from repro.sim.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        StackPassStats(walks=2, derived_streams=5).publish(registry)
        counters = registry.as_dict()["counters"]
        assert counters["stackpass.walks"] == 2
        assert counters["stackpass.derived_streams"] == 5

    def test_sweep_publishes_registry_counters(self, tiny_trace):
        from repro.core.sweep import run_speed_size_sweep
        from repro.sim.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        caller = StackPassStats()
        run_speed_size_sweep(
            [tiny_trace], [2 * KB, 4 * KB], [20.0, 40.0],
            functional_strategy="stack", stack_stats=caller,
            registry=registry,
        )
        counters = registry.as_dict()["counters"]
        assert counters["stackpass.walks"] == 1
        assert caller.walks == 1  # merged back into the caller's stats


class TestRunReportBlock:
    def test_stack_pass_block_round_trips(self):
        from repro.sim.telemetry import REPORT_SCHEMA, RunReport

        assert REPORT_SCHEMA >= 6
        report = RunReport(
            run_id="r", trace="t", config="c", simulator="fastpath",
            n_refs_total=10, n_refs_measured=8, cycles=100,
            total_cycles=120, warm_cycles=20,
            stack_pass={"walks": 1, "derived_streams": 2},
        )
        payload = report.to_dict()
        assert payload["stack_pass"] == {"walks": 1, "derived_streams": 2}
        rebuilt = RunReport.from_dict(payload)
        assert rebuilt.stack_pass == report.stack_pass

    def test_older_schema_defaults_empty(self):
        from repro.sim.telemetry import RunReport

        payload = {
            "schema": 5, "run_id": "r", "trace": "t", "config": "c",
            "simulator": "fastpath", "n_refs_total": 1,
            "n_refs_measured": 1, "cycles": 1, "total_cycles": 1,
            "warm_cycles": 0,
        }
        assert RunReport.from_dict(payload).stack_pass == {}

    def test_aggregate_folds_stack_totals(self):
        from repro.sim.telemetry import RunReport, aggregate_reports

        reports = [
            RunReport(
                run_id=f"r{i}", trace="t", config="c",
                simulator="fastpath", n_refs_total=1, n_refs_measured=1,
                cycles=1, total_cycles=1, warm_cycles=0,
                stack_pass={"walks": 1, "derived_streams": i},
            )
            for i in (1, 2)
        ]
        summary = aggregate_reports(reports)
        assert summary["stack_pass"] == {"walks": 2, "derived_streams": 3}


def test_fully_associative_geometry_direct(tiny_trace):
    """An explicitly-built single-set geometry (not via baseline sizing)
    behaves identically through both pass strategies."""
    from repro.core.timing import MemoryTiming
    from repro.sim.config import L1Spec, SystemConfig

    geometry = CacheGeometry(size_bytes=128, block_words=4, assoc=8)
    assert geometry.n_sets == 1
    config = SystemConfig(
        l1=L1Spec(
            d_geometry=geometry, i_geometry=geometry,
            policy=CachePolicy(replacement=ReplacementKind.LRU),
        ),
        memory=MemoryTiming(),
    )
    assert stack_supported(config)
    stack = stack_functional_passes([(config, tiny_trace, 0)])[0]
    assert_streams_equal(stack, functional_pass(config, tiny_trace))
