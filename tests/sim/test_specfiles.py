"""Specification files and variation overlays."""

import json

import pytest

from repro.core.policy import ReplacementKind
from repro.errors import ConfigurationError
from repro.sim.config import TranslationSpec, baseline_config
from repro.sim.specfiles import (
    apply_variation,
    config_from_dict,
    config_to_dict,
    load_spec,
    save_spec,
)
from repro.units import KB


class TestRoundTrip:
    def test_baseline_round_trips(self):
        config = baseline_config(cache_size_bytes=8 * KB, assoc=2)
        back = config_from_dict(config_to_dict(config))
        assert back == config

    def test_translation_round_trips(self):
        config = baseline_config().with_translation(
            TranslationSpec(tlb_entries=32)
        )
        back = config_from_dict(config_to_dict(config))
        assert back == config

    def test_multilevel_round_trips(self):
        from repro.core.geometry import CacheGeometry
        from repro.sim.config import LowerLevelSpec

        config = baseline_config().with_levels(
            (LowerLevelSpec(
                geometry=CacheGeometry(size_bytes=256 * KB, block_words=16)
            ),)
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        config = baseline_config(cache_size_bytes=4 * KB)
        save_spec(config, path)
        assert load_spec(path) == config


class TestVariations:
    def test_top_level_override(self):
        payload = config_to_dict(baseline_config())
        varied = apply_variation(payload, {"cycle_ns": 56.0})
        assert config_from_dict(varied).cycle_ns == 56.0

    def test_nested_override(self):
        payload = config_to_dict(baseline_config())
        varied = apply_variation(
            payload, {"l1.d_geometry.assoc": 2, "l1.i_geometry.assoc": 2}
        )
        config = config_from_dict(varied)
        assert config.l1.d_geometry.assoc == 2

    def test_enum_override(self):
        payload = config_to_dict(baseline_config())
        varied = apply_variation(
            payload, {"l1.policy.replacement": "lru"}
        )
        config = config_from_dict(varied)
        assert config.l1.policy.replacement is ReplacementKind.LRU

    def test_unknown_path_rejected(self):
        payload = config_to_dict(baseline_config())
        with pytest.raises(ConfigurationError):
            apply_variation(payload, {"l1.nonsense": 1})
        with pytest.raises(ConfigurationError):
            apply_variation(payload, {"nowhere.at.all": 1})

    def test_inconsistent_variation_fails_at_build(self):
        # A 3-word block is organizationally impossible; the config
        # validators must catch it ("maintain consistency").
        payload = config_to_dict(baseline_config())
        varied = apply_variation(payload, {"l1.d_geometry.block_words": 3})
        with pytest.raises(ConfigurationError):
            config_from_dict(varied)

    def test_variations_apply_in_order(self, tmp_path):
        base = tmp_path / "base.json"
        save_spec(baseline_config(), base)
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps({"cycle_ns": 20.0}))
        v2 = tmp_path / "v2.json"
        v2.write_text(json.dumps({"cycle_ns": 60.0}))
        config = load_spec(base, [v1, v2])
        assert config.cycle_ns == 60.0

    def test_missing_l1_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"cycle_ns": 40.0})


class TestSimulateFromSpec:
    def test_spec_equals_programmatic(self, tmp_path, mu3_small):
        from repro.sim.fastpath import fast_simulate

        config = baseline_config(cache_size_bytes=4 * KB)
        path = tmp_path / "spec.json"
        save_spec(config, path)
        loaded = load_spec(
            path, [{"l1.d_geometry.size_bytes": 8 * KB,
                    "l1.i_geometry.size_bytes": 8 * KB}]
        )
        direct = baseline_config(cache_size_bytes=8 * KB)
        assert fast_simulate(loaded, mu3_small).cycles == \
            fast_simulate(direct, mu3_small).cycles
