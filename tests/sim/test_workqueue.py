"""The durable work-queue fabric: leases, heartbeats, crash recovery.

Every invariant the spool claims is exercised here without trusting a
wall clock: claims and publishes are exclusive (a forged intruder always
loses), lease expiry is judged purely by observed heartbeat stall on
injected :class:`~repro.sim.faults.SteppedClock` instances (so
clock-step chaos is a no-op by construction), reclaim has a single
winner and monotonically increasing epochs, repeat-offender jobs poison
instead of crash-looping, and a crash at any point mid-write leaves at
worst a stray temp file that ``fsck`` sweeps — never a torn lease or a
visible half-result.  The flagship tests run whole sweeps through the
spool backend under chaos and require bit-identical results to an
undisturbed run with zero lost and zero duplicated jobs.
"""

import json
import subprocess
import sys
import threading

import pytest

from repro.errors import (
    CampaignError,
    CorruptResultError,
    LeaseLostError,
)
from repro.sim import faults
from repro.sim.campaign import Campaign, run_id
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.sim.resilience import (
    CampaignExecutor,
    RetryPolicy,
    sweep_jobs,
)
from repro.sim.workqueue import (
    DoneRecord,
    Lease,
    SpoolWorker,
    SweepSpec,
    WorkQueue,
    atomic_claim_text,
    done_from_dict,
    done_to_dict,
    drain_spool,
    lease_from_dict,
    lease_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.trace.suite import build_trace
from repro.units import KB


@pytest.fixture(scope="module")
def trace():
    return build_trace("mu3", length=2_000, seed=1)


@pytest.fixture()
def config():
    return baseline_config(cache_size_bytes=4 * KB)


@pytest.fixture()
def jobs(config, trace):
    return sweep_jobs([config], [trace])


def make_queue(directory, clock=None, **kwargs):
    """A WorkQueue on a SteppedClock with near-zero re-claim backoff."""
    clock = clock or faults.SteppedClock()
    kwargs.setdefault(
        "retry", RetryPolicy(backoff_base_s=0.01, jitter=0.0)
    )
    return WorkQueue(directory, clock=clock, **kwargs), clock


def spool_with_job(tmp_path, jobs):
    queue, clock = make_queue(tmp_path / "spool")
    (job_id,) = queue.enqueue_jobs(jobs)
    return queue, clock, job_id


# ----------------------------------------------------------------------
# The claim primitive
# ----------------------------------------------------------------------
class TestAtomicClaim:
    def test_second_claim_loses(self, tmp_path):
        target = tmp_path / "slot.json"
        atomic_claim_text(target, "winner")
        with pytest.raises(FileExistsError):
            atomic_claim_text(target, "loser")
        assert target.read_text() == "winner"

    def test_loser_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "slot.json"
        atomic_claim_text(target, "winner")
        with pytest.raises(FileExistsError):
            atomic_claim_text(target, "loser")
        assert [p.name for p in tmp_path.iterdir()] == ["slot.json"]

    def test_concurrent_claims_one_winner(self, tmp_path):
        """Many threads race one slot: exactly one wins, the file is
        never torn (its contents are exactly one contender's text)."""
        target = tmp_path / "slot.json"
        outcomes = []

        def contend(n):
            try:
                atomic_claim_text(target, f"contender-{n}" * 100)
            except FileExistsError:
                outcomes.append(("lost", n))
            else:
                outcomes.append(("won", n))

        threads = [
            threading.Thread(target=contend, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        winners = [n for kind, n in outcomes if kind == "won"]
        assert len(winners) == 1
        assert target.read_text() == f"contender-{winners[0]}" * 100
        assert [p.name for p in tmp_path.iterdir()] == ["slot.json"]

    def test_forged_duplicate_claim_always_loses(self, tmp_path, jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        assert queue.claim("honest") is not None
        assert faults.duplicate_claim(queue, job_id) is False

    def test_crash_mid_stage_leaves_no_visible_lease(self, tmp_path,
                                                     jobs):
        """Dying between the staging write and the link must leave the
        slot unclaimed and the debris sweepable — never a torn lease."""
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        # Model the crash: the staged temp file exists, the link never
        # happened (same on-disk state as kill -9 between the two).
        debris = queue.leases_dir / f".tmp.{job_id}.json.999.0.0.claim"
        debris.write_text('{"half": "a lease torn mid-wri')
        assert queue._read_lease(queue.lease_path(job_id)) is None
        stray, stale = queue.fsck(repair=True)
        assert debris in stray and not stale
        assert not debris.exists()
        # The slot is claimable as if nothing happened.
        assert queue.claim("worker-a") is not None


# ----------------------------------------------------------------------
# Documents: checksummed, validated, round-tripping
# ----------------------------------------------------------------------
class TestDocuments:
    def test_spec_round_trips(self):
        spec = SweepSpec(sizes_kb=(4.0,), cycles_ns=(40.0,),
                         trace_names=("mu3",), length=2_000)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_spec_rejects_unknown_simulator(self):
        with pytest.raises(CampaignError):
            SweepSpec(simulator="quantum")

    def test_spec_cached_requires_cache_dir(self):
        with pytest.raises(CampaignError):
            SweepSpec(simulator="cached")

    def test_lease_round_trips_and_carries_no_timestamps(self):
        lease = Lease(job_id="j", owner="w", pid=42, epoch=3, beat=7)
        doc = lease_to_dict(lease)
        assert lease_from_dict(doc) == lease
        # The protocol's core claim: expiry is judged by observation,
        # so the document has nothing an observer could mis-trust.
        assert not any("time" in key or "stamp" in key for key in doc)

    def test_done_record_round_trips(self):
        record = DoneRecord(job_id="j", owner="w", epoch=2, attempts=3)
        assert done_from_dict(done_to_dict(record)) == record

    def test_corrupt_lease_is_archived_not_fatal(self, tmp_path, jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        assert queue.claim("worker-a") is not None
        faults.corrupt_file(queue.lease_path(job_id))
        # The corrupt file is moved aside and the slot becomes free.
        assert queue._read_lease(queue.lease_path(job_id)) is None
        assert queue.counters["corrupt_leases"] == 1
        assert list(queue.lost_dir.glob("*.corrupt*"))
        assert queue.claim("worker-b") is not None

    def test_save_spec_is_idempotent_but_rejects_other_sweep(
        self, tmp_path
    ):
        queue, _ = make_queue(tmp_path / "spool")
        spec = SweepSpec(sizes_kb=(4.0,), trace_names=("mu3",))
        queue.save_spec(spec)
        queue.save_spec(spec)  # same sweep: fine
        with pytest.raises(CampaignError, match="different sweep"):
            queue.save_spec(SweepSpec(sizes_kb=(8.0,),
                                      trace_names=("mu3",)))

    def test_enqueue_is_idempotent(self, tmp_path, jobs):
        queue, _ = make_queue(tmp_path / "spool")
        first = queue.enqueue_jobs(jobs)
        before = queue.job_path(first[0]).read_bytes()
        assert queue.enqueue_jobs(jobs) == first
        assert queue.job_path(first[0]).read_bytes() == before


# ----------------------------------------------------------------------
# Lease lifecycle: heartbeat, expiry, reclaim, epochs
# ----------------------------------------------------------------------
class TestLeaseLifecycle:
    def test_heartbeat_bumps_beat(self, tmp_path, jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        lease = queue.claim("worker-a", ttl_s=30.0)
        queue.heartbeat(lease)
        queue.heartbeat(lease)
        stored = lease_from_dict(
            json.loads(queue.lease_path(job_id).read_text())
        )
        assert stored.beat == 2
        assert queue.counters["heartbeats"] == 2

    def test_healthy_lease_never_expires(self, tmp_path, jobs):
        queue, clock, _ = spool_with_job(tmp_path, jobs)
        lease = queue.claim("worker-a", ttl_s=1.0)
        for _ in range(10):
            clock.advance(0.9)          # just inside the TTL each time
            queue.heartbeat(lease)      # ...because it keeps renewing
            assert not queue.monitor.expired(lease)

    def test_stalled_lease_expires_after_ttl(self, tmp_path, jobs):
        queue, clock, _ = spool_with_job(tmp_path, jobs)
        lease = queue.claim("worker-a", ttl_s=1.0)
        queue.monitor.observe(lease)
        clock.advance(0.5)
        assert not queue.monitor.expired(lease)
        clock.advance(0.6)  # 1.1 total with no beat: stalled past TTL
        assert queue.monitor.expired(lease)

    def test_wall_clock_steps_cannot_expire_a_lease(self, tmp_path,
                                                    jobs):
        """A wall-clock discontinuity is invisible to the protocol: no
        document carries a timestamp and no observer compares one, so
        only *observed stall on the observer's own clock* expires a
        lease.  The observer's clock here never advances — however the
        wall clock jumps around it, the lease stays healthy."""
        queue, clock, _ = spool_with_job(tmp_path, jobs)
        lease = queue.claim("worker-a", ttl_s=1.0)
        queue.monitor.observe(lease)
        # Hours of wall-clock chaos, zero monotonic progress:
        assert lease_to_dict(lease) == lease_to_dict(lease)  # no time dep
        assert not queue.monitor.expired(lease)
        # A *fresh* observer grants a full TTL of grace too — it cannot
        # inherit staleness from timestamps, because there are none.
        fresh, fresh_clock = make_queue(queue.directory)
        assert fresh.claim("worker-b", ttl_s=1.0) is None  # lease holds
        fresh_clock.advance(1.1)  # only genuine observed stall expires
        assert fresh.claim("worker-b", ttl_s=1.0) is None  # reclaim pass
        assert fresh.counters["leases_reclaimed"] == 1
        fresh_clock.advance(1.0)  # past the re-claim backoff
        assert fresh.claim("worker-b", ttl_s=1.0) is not None

    def test_reclaim_has_single_winner(self, tmp_path, jobs):
        queue_a, clock_a, _ = spool_with_job(tmp_path, jobs)
        queue_b, clock_b = make_queue(queue_a.directory)
        lease = queue_a.claim("victim", ttl_s=1.0)
        queue_a.monitor.observe(lease)
        queue_b.monitor.observe(lease)
        clock_a.advance(2.0)
        clock_b.advance(2.0)
        assert queue_a.monitor.expired(lease)
        assert queue_b.monitor.expired(lease)
        outcomes = [queue_a.reclaim(lease), queue_b.reclaim(lease)]
        assert sorted(outcomes) == [False, True]
        assert len(list(queue_a.lost_dir.glob("*.json"))) == 1

    def test_epochs_increase_monotonically_across_losses(self, tmp_path,
                                                         jobs):
        queue, clock, job_id = spool_with_job(tmp_path, jobs)
        epochs = []
        for _ in range(3):
            lease = queue.claim("crashy", ttl_s=1.0)
            assert lease is not None and lease.job_id == job_id
            epochs.append(lease.epoch)
            clock.advance(1.1)          # heartbeat stalls...
            assert queue.claim("x") is None  # ...claim expires+reclaims
            clock.advance(10.0)         # past the re-claim backoff
        assert epochs == [1, 2, 3]
        archived = sorted(
            p.name for p in queue.lost_dir.glob(f"{job_id}.*.json")
        )
        assert archived == [f"{job_id}.{e}.json" for e in (1, 2, 3)]

    def test_reclaimed_job_waits_out_backoff(self, tmp_path, jobs):
        queue, clock, _ = spool_with_job(tmp_path, jobs)
        lease = queue.claim("victim", ttl_s=1.0)
        clock.advance(1.1)
        assert queue.claim("eager") is None  # expired + reclaimed here
        assert queue.counters["leases_reclaimed"] == 1
        # Immediately after the reclaim the job is deferred...
        assert queue.claim("eager") is None
        # ...until the deterministic backoff has elapsed.
        clock.advance(queue.retry.delay_s(f"lease:{lease.job_id}", 1))
        reclaimed = queue.claim("eager")
        assert reclaimed is not None and reclaimed.epoch == 2

    def test_heartbeat_after_reclaim_raises_lease_lost(self, tmp_path,
                                                       jobs):
        queue, clock, _ = spool_with_job(tmp_path, jobs)
        queue_b, clock_b = make_queue(queue.directory)
        lease = queue.claim("victim", ttl_s=1.0)
        queue_b.monitor.observe(lease)
        clock_b.advance(1.1)
        assert queue_b.claim("usurper", ttl_s=1.0) is None  # reclaim pass
        clock_b.advance(10.0)  # past backoff
        usurper = queue_b.claim("usurper", ttl_s=1.0)
        assert usurper is not None and usurper.epoch == 2
        with pytest.raises(LeaseLostError):
            queue.heartbeat(lease)

    def test_release_only_removes_own_lease(self, tmp_path, jobs):
        queue, clock, job_id = spool_with_job(tmp_path, jobs)
        queue_b, clock_b = make_queue(queue.directory)
        lease = queue.claim("victim", ttl_s=1.0)
        queue_b.monitor.observe(lease)
        clock_b.advance(1.1)
        assert queue_b.claim("usurper", ttl_s=1.0) is None  # reclaim pass
        clock_b.advance(10.0)  # past backoff
        usurper = queue_b.claim("usurper", ttl_s=1.0)
        assert usurper is not None
        assert queue.release(lease) is False  # stale owner: no-op
        assert queue.lease_path(job_id).exists()
        assert queue_b.release(usurper) is True

    def test_dead_owner_pid_is_fast_path_expiry(self, tmp_path, jobs):
        """A same-host lease whose owner pid is gone is reclaimable
        immediately — no TTL wait."""
        queue, clock, job_id = spool_with_job(tmp_path, jobs)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lease = queue.claim("dead-worker", ttl_s=3600.0)
        # Rewrite the lease as if it belonged to the dead process.
        dead = Lease(job_id=job_id, owner="dead-worker", pid=proc.pid,
                     epoch=1, beat=0, ttl_s=3600.0)
        from repro.sim.campaign import atomic_write_text
        from repro.sim.workqueue import _dump

        atomic_write_text(queue.lease_path(job_id),
                          _dump(lease_to_dict(dead)))
        fresh, _ = make_queue(queue.directory)
        assert fresh.claim("x") is None  # this pass expires + reclaims
        assert fresh.counters["leases_expired"] == 1
        assert list(queue.lost_dir.glob(f"{job_id}.1.json"))


# ----------------------------------------------------------------------
# Poison quarantine
# ----------------------------------------------------------------------
class TestPoison:
    def test_repeat_offender_is_poisoned(self, tmp_path, jobs):
        queue, clock, job_id = spool_with_job(tmp_path, jobs)
        queue.poison_losses = 2
        for expected_epoch in (1, 2):
            lease = queue.claim("crashy", ttl_s=1.0)
            assert lease is not None and lease.epoch == expected_epoch
            clock.advance(1.1)
            queue.claim("x")  # expires + reclaims (and poisons at 2)
            clock.advance(10.0)
        assert queue.poison_path(job_id).exists()
        assert queue.counters["jobs_poisoned"] == 1
        assert queue.claim("anyone") is None  # never granted again
        assert queue.remaining() == 0  # poison counts as resolved
        assert queue.status()["poisoned"] == 1

    def test_poisoned_job_surfaces_as_failed_in_manifest(self, tmp_path,
                                                         jobs):
        campaign = Campaign(tmp_path)
        queue, clock = make_queue(campaign.spool_dir, poison_losses=1)
        (job_id,) = queue.enqueue_jobs(jobs)
        queue.claim("crashy", ttl_s=1.0)
        clock.advance(1.1)
        queue.claim("x")
        manifest = queue.sync_manifest(campaign)
        record = manifest.runs[job_id]
        assert record.status == "failed"
        assert record.error.startswith("poisoned:")
        assert "crashy" in record.error

    def test_poison_render_status(self, tmp_path, jobs):
        queue, clock = make_queue(tmp_path / "spool", poison_losses=1)
        queue.enqueue_jobs(jobs)
        queue.claim("crashy", ttl_s=1.0)
        clock.advance(1.1)
        queue.claim("x")
        assert "1 poisoned" in queue.render_status()


# ----------------------------------------------------------------------
# Publish: exclusive, duplicate-dropping
# ----------------------------------------------------------------------
class TestPublish:
    def test_first_publish_wins_duplicate_dropped(self, tmp_path, jobs,
                                                  config, trace):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        from repro.sim.resilience import RunRecord

        lease = queue.claim("worker-a")
        record = RunRecord(run_id=job_id, status="ok", attempts=1)
        assert queue.publish(lease, record) is True
        stale = Lease(job_id=job_id, owner="zombie", epoch=1)
        assert queue.publish(stale, record) is False
        assert queue.counters["jobs_published"] == 1
        assert queue.counters["duplicate_publishes"] == 1
        stored = done_from_dict(
            json.loads(queue.done_path(job_id).read_text())
        )
        assert stored.owner == "worker-a"

    def test_done_job_is_never_claimable(self, tmp_path, jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        from repro.sim.resilience import RunRecord

        lease = queue.claim("worker-a")
        queue.publish(lease, RunRecord(run_id=job_id, status="ok"))
        queue.release(lease)
        assert queue.claim("worker-b") is None
        assert queue.remaining() == 0


# ----------------------------------------------------------------------
# fsck: stray temps and stale leases
# ----------------------------------------------------------------------
class TestFsck:
    def test_stale_lease_of_finished_job_removed(self, tmp_path, jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        from repro.sim.resilience import RunRecord

        lease = queue.claim("worker-a")
        queue.publish(lease, RunRecord(run_id=job_id, status="ok"))
        # The worker died before releasing: lease file outlives the job.
        stray, stale = queue.fsck()
        assert stale == [queue.lease_path(job_id)]
        assert queue.lease_path(job_id).exists()  # report-only
        queue.fsck(repair=True)
        assert not queue.lease_path(job_id).exists()

    def test_stale_lease_of_pending_job_archived_as_loss(self, tmp_path,
                                                         jobs):
        queue, _, job_id = spool_with_job(tmp_path, jobs)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        queue.claim("dead", ttl_s=3600.0)
        from repro.sim.campaign import atomic_write_text
        from repro.sim.workqueue import _dump

        dead = Lease(job_id=job_id, owner="dead", pid=proc.pid)
        atomic_write_text(queue.lease_path(job_id),
                          _dump(lease_to_dict(dead)))
        fresh, _ = make_queue(queue.directory)
        stray, stale = fresh.fsck(repair=True)
        assert stale
        assert not fresh.lease_path(job_id).exists()
        # Archived as a loss, so the next grant's epoch stays monotonic.
        assert list(fresh.lost_dir.glob(f"{job_id}.1.json"))

    def test_campaign_fsck_sees_spool_problems(self, tmp_path, jobs):
        """Satellite: `campaign fsck` detects orphaned spool temp files
        and stale leases and reports them in its FsckReport."""
        campaign = Campaign(tmp_path)
        queue, _ = make_queue(campaign.spool_dir)
        (job_id,) = queue.enqueue_jobs(jobs)
        from repro.sim.resilience import RunRecord

        lease = queue.claim("worker-a")
        queue.publish(lease, RunRecord(run_id=job_id, status="ok"))
        debris = queue.jobs_dir / ".tmp.orphan.json"
        debris.write_text("half a jo")
        report = campaign.fsck()
        assert debris in report.stray_tmp
        assert report.stale_leases == [queue.lease_path(job_id)]
        assert not report.clean
        assert "stale lease" in report.render()
        repaired = campaign.fsck(repair=True)
        assert not debris.exists()
        assert not queue.lease_path(job_id).exists()
        assert campaign.fsck().clean


# ----------------------------------------------------------------------
# Workers end to end (deterministic chaos, injected clocks)
# ----------------------------------------------------------------------
class TestSpoolWorker:
    def test_worker_drains_spool_and_publishes(self, tmp_path, jobs,
                                               config, trace):
        campaign = Campaign(tmp_path)
        manifest = drain_spool(
            campaign,
            spec=SweepSpec(
                sizes_kb=(4.0,), cycles_ns=(40.0,),
                trace_names=("mu3",), length=2_000, seed=1,
            ),
        )
        assert [r.status for r in manifest.runs.values()] == ["ok"]
        queue = WorkQueue.for_campaign(campaign)
        assert queue.remaining() == 0
        # The worker released its lease on the way out.
        assert not list(queue.leases_dir.glob("*.json"))

    def test_sigterm_style_drain_stops_claiming(self, tmp_path, jobs,
                                                config, trace):
        campaign = Campaign(tmp_path)
        queue, _ = make_queue(campaign.spool_dir)
        ids = queue.enqueue_jobs(jobs)
        jobs_by_id = {
            identifier: (index, job)
            for index, (identifier, job) in enumerate(zip(ids, jobs))
        }
        worker = SpoolWorker(queue, campaign, jobs_by_id, name="w")
        worker.request_drain()
        assert worker.run() == 0  # drained before claiming anything
        assert queue.remaining() == 1

    def test_resume_skips_completed_jobs(self, tmp_path, trace):
        """Killing the coordinator loses nothing: a fresh drain picks up
        exactly the unfinished jobs and never re-executes a done one."""
        spec = SweepSpec(sizes_kb=(2.0, 4.0), cycles_ns=(40.0,),
                         trace_names=("mu3",), length=2_000, seed=1)
        campaign = Campaign(tmp_path)
        queue = WorkQueue.for_campaign(campaign)
        ids = queue.enqueue(spec)
        assert len(ids) == 2
        all_jobs = spec.build_jobs()
        jobs_by_id = {
            identifier: (index, job)
            for index, (identifier, job) in enumerate(zip(ids, all_jobs))
        }
        # First "process" publishes one job, then "dies" (stops).
        first = SpoolWorker(queue, campaign, jobs_by_id, name="w1")
        assert first.run(max_jobs=1) == 1
        done_before = {
            p.name: p.read_bytes()
            for p in queue.done_dir.glob("*.json")
        }
        assert len(done_before) == 1
        # A brand-new process resumes from the spool alone.
        manifest = drain_spool(campaign)
        assert len(manifest.runs) == 2
        assert all(r.status == "ok" for r in manifest.runs.values())
        # The completed job's done record was not touched or re-won.
        for name, payload in done_before.items():
            assert (queue.done_dir / name).read_bytes() == payload

    def test_wedged_worker_loses_publish_race(self, tmp_path, jobs,
                                              config, trace):
        """The full chaos arc, deterministically: a worker wedges (stops
        heartbeating), an observer expires and reclaims its lease, a
        second worker completes the job, and the wedged worker's late
        publish is dropped — exactly one done record, byte-identical to
        the one a clean run produces."""
        campaign = Campaign(tmp_path)
        queue_a, clock_a = make_queue(campaign.spool_dir)
        (job_id,) = queue_a.enqueue_jobs(jobs)
        from repro.sim.resilience import RunRecord

        wedged = queue_a.claim("wedged", ttl_s=1.0)
        # Observer b watches the heartbeat stall and takes the job over.
        queue_b, clock_b = make_queue(campaign.spool_dir)
        queue_b.monitor.observe(wedged)
        clock_b.advance(1.1)
        assert queue_b.claim("usurper", ttl_s=1.0) is None  # reclaim pass
        clock_b.advance(10.0)  # past backoff
        takeover = queue_b.claim("usurper", ttl_s=1.0)
        assert takeover is not None and takeover.epoch == 2
        record = RunRecord(run_id=job_id, status="ok", attempts=1)
        assert queue_b.publish(takeover, record) is True
        queue_b.release(takeover)
        # The wedged worker wakes up and tries to finish: every door is
        # closed — renewal fails, publish is dropped.
        with pytest.raises(LeaseLostError):
            queue_a.heartbeat(wedged)
        assert queue_a.publish(wedged, record) is False
        assert queue_a.counters["duplicate_publishes"] == 1
        done = done_from_dict(
            json.loads(queue_a.done_path(job_id).read_text())
        )
        assert done.owner == "usurper" and done.epoch == 2


# ----------------------------------------------------------------------
# Heartbeat-stall chaos (the STALL_BEAT fault kind)
# ----------------------------------------------------------------------
class TestStallBeatChaos:
    def test_plan_gates_stall_by_index_and_attempt(self):
        plan = faults.FaultPlan({2: faults.FaultSpec(faults.STALL_BEAT)})
        assert plan.should_stall_heartbeat(2, 1)
        assert not plan.should_stall_heartbeat(2, 2)
        assert not plan.should_stall_heartbeat(0, 1)

    def test_wedged_worker_skips_renewals(self, tmp_path, jobs):
        """A STALL_BEAT fault makes the worker skip lease renewal — the
        observable signature of a wedged process — while an unfaulted
        attempt renews normally."""
        campaign = Campaign(tmp_path)
        queue, _ = make_queue(campaign.spool_dir)
        ids = queue.enqueue_jobs(jobs)
        jobs_by_id = {
            identifier: (index, job)
            for index, (identifier, job) in enumerate(zip(ids, jobs))
        }
        plan = faults.FaultPlan({
            0: faults.FaultSpec(faults.STALL_BEAT, attempts=(1,)),
        })
        worker = SpoolWorker(queue, campaign, jobs_by_id, name="w",
                             fault_plan=plan)
        lease = queue.claim("w")
        worker._beat(lease, attempt=1)   # wedged: renewal suppressed
        assert queue.counters["heartbeats"] == 0
        worker._beat(lease, attempt=2)   # recovered: renewal happens
        assert queue.counters["heartbeats"] == 1


# ----------------------------------------------------------------------
# The spool backend: chaos-ridden sweeps stay bit-identical
# ----------------------------------------------------------------------
class TestSpoolBackendAcceptance:
    @pytest.fixture(scope="class")
    def sweep(self):
        trace = build_trace("mu3", length=2_000, seed=1)
        trace_b = build_trace("rd2n4", length=2_000, seed=1)
        configs = [
            baseline_config(cache_size_bytes=2 * KB * (2 ** k))
            for k in range(3)
        ]
        return sweep_jobs(configs, [trace, trace_b])

    @pytest.fixture(scope="class")
    def baseline(self, sweep, tmp_path_factory):
        """An undisturbed pool-backend sweep's files, keyed by run id."""
        campaign = Campaign(tmp_path_factory.mktemp("clean"))
        executor = CampaignExecutor(campaign)
        report = executor.run_sweep(sweep)
        assert report.all_ok
        return {
            path.stem: path.read_bytes()
            for path in campaign._result_paths()
        }

    def test_spool_backend_matches_pool_backend(self, sweep, baseline,
                                                tmp_path_factory):
        campaign = Campaign(tmp_path_factory.mktemp("spool"))
        executor = CampaignExecutor(campaign, jobs=3, backend="spool")
        report = executor.run_sweep(sweep)
        assert report.all_ok and len(report.records) == len(sweep)
        stored = {path.stem: path.read_bytes()
                  for path in campaign._result_paths()}
        assert stored == baseline
        assert executor.fabric["workers"] == 3
        assert executor.fabric["jobs_published"] == len(sweep)

    def test_chaos_sweep_is_bit_identical_zero_lost_zero_dup(
        self, sweep, baseline, tmp_path_factory
    ):
        """The correctness bar from the issue: a chaos-ridden campaign
        (worker crashes and transient errors on >1/3 of the jobs) must
        produce results bit-identical to the undisturbed run, with
        every job completed exactly once."""
        plan = faults.FaultPlan({
            0: faults.FaultSpec(faults.CRASH),   # dies, retried
            2: faults.FaultSpec(faults.ERROR),   # raises, retried
            4: faults.FaultSpec(faults.CRASH, attempts=(1, 2)),
        })
        campaign = Campaign(tmp_path_factory.mktemp("chaos"))
        sleeps = []
        executor = CampaignExecutor(
            campaign, jobs=2, backend="spool", fault_plan=plan,
            retry=RetryPolicy(max_attempts=4), sleep_fn=sleeps.append,
        )
        report = executor.run_sweep(sweep)
        assert report.all_ok and len(report.records) == len(sweep)
        # Zero lost: every sweep cell has exactly one done record.
        queue = WorkQueue.for_campaign(campaign)
        done_ids = sorted(p.stem for p in queue.done_dir.glob("*.json"))
        assert done_ids == sorted(
            run_id(job.config, job.trace) for job in sweep
        )
        # Zero duplicated: no done record was contested and dropped...
        assert executor.fabric["duplicate_publishes"] == 0
        # ...and nothing was poisoned or left leased.
        assert executor.fabric["jobs_poisoned"] == 0
        assert not list(queue.leases_dir.glob("*.json"))
        # Bit-identical to the undisturbed sweep.
        stored = {path.stem: path.read_bytes()
                  for path in campaign._result_paths()}
        assert stored == baseline

    def test_resumed_spool_sweep_reuses_everything(self, sweep, baseline,
                                                   tmp_path_factory):
        campaign = Campaign(tmp_path_factory.mktemp("resume"))
        first = CampaignExecutor(campaign, backend="spool")
        assert first.run_sweep(sweep).all_ok
        published = first.fabric["jobs_published"]
        assert published == len(sweep)
        second = CampaignExecutor(campaign, backend="spool")
        report = second.run_sweep(sweep)
        assert report.all_ok and len(report.records) == len(sweep)
        # Nothing re-executed: the spool's done records short-circuit.
        assert second.fabric["jobs_published"] == 0
        assert second.fabric["leases_issued"] == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_enqueue_worker_drain_status(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "camp")
        assert main([
            "campaign", "enqueue", directory,
            "--sizes-kb", "2,4", "--cycles-ns", "40",
            "--traces", "mu3", "--length", "2000",
        ]) == 0
        out = capsys.readouterr().out
        assert "spooled 2 job(s)" in out

        assert main([
            "campaign", "worker", directory, "--max-jobs", "1",
        ]) == 0
        assert "published 1 job(s)" in capsys.readouterr().out

        assert main(["campaign", "drain", directory]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out and "2 done" in out

        assert main(["campaign", "status", directory]) == 0
        out = capsys.readouterr().out
        assert "spool:" in out and "0 pending" in out

    def test_run_spool_backend_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "camp")
        argv = [
            "campaign", "run", directory, "--backend", "spool",
            "--sizes-kb", "2", "--cycles-ns", "40",
            "--traces", "mu3", "--length", "2000", "--jobs", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 ok" in out and "fabric:" in out
        # Re-running resumes from the spool: still ok, nothing redone.
        assert main(argv) == 0
        assert "0 lease(s) issued" in capsys.readouterr().out

    def test_worker_without_spool_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "campaign", "worker", str(tmp_path / "empty"),
        ]) == 2
        assert "no spool manifest" in capsys.readouterr().err

    def test_enqueue_conflicting_sweep_is_error(self, tmp_path, capsys):
        from repro.cli import main

        directory = str(tmp_path / "camp")
        base = ["--traces", "mu3", "--length", "2000",
                "--cycles-ns", "40"]
        assert main(["campaign", "enqueue", directory,
                     "--sizes-kb", "2", *base]) == 0
        capsys.readouterr()
        assert main(["campaign", "enqueue", directory,
                     "--sizes-kb", "4", *base]) == 2
        assert "different sweep" in capsys.readouterr().err
