"""Reference engine: hand-computed timing scenarios.

Each test builds a tiny trace whose cycle count can be derived by hand
from the paper's timing rules (Table 2 semantics at a 40 ns clock:
read miss 10 cycles, write handoff 2, write-op 3, recovery 3).
"""

import pytest

from repro.core.geometry import CacheGeometry
from repro.core.policy import CachePolicy, MissHandling, ReplacementKind
from repro.core.timing import MemoryTiming
from repro.errors import ConfigurationError
from repro.sim.config import L1Spec, LowerLevelSpec, SystemConfig, baseline_config
from repro.sim.engine import simulate
from repro.trace.record import RefKind, Trace
from repro.units import KB

I, L, S = int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.STORE)


def trace_of(refs, warm=0):
    kinds = [k for k, _a in refs]
    addrs = [a for _k, a in refs]
    return Trace(kinds, addrs, [1] * len(refs), warm_boundary=warm)


def run(refs, config=None, **config_kw):
    config = config or baseline_config(cache_size_bytes=4 * KB, **config_kw)
    return simulate(config, trace_of(refs))


class TestSingleLevelTiming:
    def test_read_miss_costs_table2_read_time(self):
        stats = run([(I, 0)])
        assert stats.cycles == 10  # 1 addr + 5 latency + 4 transfer

    def test_read_hit_costs_one_cycle(self):
        stats = run([(I, 0), (I, 1)])
        assert stats.cycles == 11

    def test_write_hit_costs_two_cycles(self):
        # Load allocates the block; the store then hits.
        stats = run([(L, 0), (S, 1)])
        assert stats.cycles == 12

    def test_write_miss_bypass_costs_two_cycles(self):
        stats = run([(S, 0)])
        assert stats.cycles == 2

    def test_couplet_completes_at_latest_half(self):
        # ifetch hit (1 cycle) + store hit would be 2; the couplet costs
        # max of the halves.
        stats = run([(I, 0), (I, 1), (L, 100), (I, 2), (S, 100)])
        # c1: I0 miss -> 10; c2: (I1 hit, L100 miss): load starts at 10
        # but memory recovers until 13 -> done 23; c3: (I2 hit, S100
        # hit): max(1, 2) = 2 -> 25.
        assert stats.cycles == 25

    def test_memory_recovery_delays_back_to_back_misses(self):
        stats = run([(I, 0), (I, 1024)])
        # Second miss waits for recovery: starts at 13, done at 23.
        assert stats.cycles == 23

    def test_dirty_victim_writeback_hidden_under_latency(self):
        # 4KB direct-mapped D-cache = 1024 words; load 0, dirty it,
        # then load 1024 (same index): the victim moves to the write
        # buffer during the 6-cycle latency (4-cycle move), so the
        # refill is not delayed.
        stats = run([(L, 0), (S, 0), (L, 1024)])
        # c1: 10; c2: store hit 2 -> 12; c3: miss starts max(12, 13)=13,
        # done 23.
        assert stats.cycles == 23
        assert stats.dcache.writeback_blocks == 1
        assert stats.dcache.writeback_words_dirty == 1
        assert stats.dcache.writeback_words_full == 4

    def test_read_match_stall_drains_buffered_write(self):
        # Keep memory busy so the bypassed store cannot drain, then
        # load the same block: the read must wait for the write.
        stats = run([(L, 100), (S, 0), (L, 0)])
        # c1: miss done 10, memory free at 13.
        # c2: store miss bypass at 11 -> buffered; done 12.
        # c3: load 0 misses; matches the buffered word; drain starts at
        # 13, handoff 13+2=15, memory busy 15+3+3=21; read starts 21,
        # done 31.
        assert stats.cycles == 31
        assert stats.buffer.match_stalls == 1

    def test_warm_boundary_excludes_startup(self):
        trace = trace_of([(I, 0), (I, 1), (I, 2)], warm=1)
        stats = simulate(baseline_config(cache_size_bytes=4 * KB), trace)
        # Couplet 0 (the 10-cycle miss) is warm-up; measured: 2 hits.
        assert stats.cycles == 2
        assert stats.icache.reads == 2
        assert stats.icache.read_misses == 0

    def test_warm_boundary_consuming_everything_rejected(self):
        trace = trace_of([(I, 0)], warm=1)
        with pytest.raises(ConfigurationError):
            simulate(baseline_config(cache_size_bytes=4 * KB), trace)


class TestMissHandlingModes:
    def _config(self, mode):
        base = baseline_config(cache_size_bytes=4 * KB)
        policy = CachePolicy(
            replacement=ReplacementKind.RANDOM, miss_handling=mode
        )
        return base.with_policy(policy)

    def test_load_forward_resumes_after_first_word(self):
        # Miss on the last word of a block: blocking waits 10 cycles;
        # load forwarding resumes after latency + 1 word = 7.
        stats = simulate(self._config(MissHandling.LOAD_FORWARD),
                         trace_of([(I, 3)]))
        assert stats.cycles == 7

    def test_early_continuation_waits_for_streamed_word(self):
        # Block streams from word 0; word 3 goes past at latency + 4.
        stats = simulate(self._config(MissHandling.EARLY_CONTINUATION),
                         trace_of([(I, 3)]))
        assert stats.cycles == 10

    def test_early_continuation_first_word(self):
        stats = simulate(self._config(MissHandling.EARLY_CONTINUATION),
                         trace_of([(I, 0)]))
        assert stats.cycles == 7

    def test_modes_never_slower_than_blocking(self):
        refs = [(I, i * 3 % 512) for i in range(200)]
        blocking = simulate(self._config(MissHandling.BLOCKING),
                            trace_of(refs))
        for mode in (MissHandling.EARLY_CONTINUATION,
                     MissHandling.LOAD_FORWARD):
            assert simulate(self._config(mode),
                            trace_of(refs)).cycles <= blocking.cycles


class TestUnifiedCache:
    def test_unified_serializes_references(self):
        config = SystemConfig(
            l1=L1Spec(
                d_geometry=CacheGeometry(size_bytes=4 * KB),
                unified=True,
                policy=CachePolicy(replacement=ReplacementKind.RANDOM),
            ),
        )
        stats = simulate(config, trace_of([(I, 0), (L, 1)]))
        # Miss (10 cycles) then a hit in a separate couplet (1 cycle).
        assert stats.cycles == 11


class TestTwoLevel:
    def _two_level_config(self, l2_latency_ns=40.0):
        base = baseline_config(cache_size_bytes=2 * KB, cycle_ns=40.0)
        level = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=64 * KB, block_words=16),
            port=MemoryTiming(
                latency_ns=l2_latency_ns, transfer_rate=1.0,
                write_op_ns=0.0, recovery_ns=0.0, address_cycles=1,
            ),
        )
        return base.with_levels((level,))

    def test_l2_miss_path_timing(self):
        stats = simulate(self._two_level_config(), trace_of([(I, 0)]))
        # L2 lookup: start 0; miss; memory read of the 16W L2 block
        # issued at 1: 1 + max(6, 0) + 16 = 23; L1 block forwarded in 4
        # cycles: done 27.
        assert stats.cycles == 27

    def test_l2_hit_is_much_cheaper_than_memory(self):
        stats = simulate(
            self._two_level_config(),
            trace_of([(I, 0), (I, 8)]),
        )
        # Second ifetch: a different L1 block but inside the 16W L2
        # block fetched by the first miss — an L2 hit: 2 cycles latency
        # (incl. address) + 4 transfer = 6 cycles.
        assert stats.cycles == 27 + 6
        assert stats.lower is not None
        assert stats.lower.reads == 2
        assert stats.lower.read_misses == 1

    def test_l2_reduces_execution_time_on_real_trace(self, rd2n4_small):
        base = baseline_config(cache_size_bytes=2 * KB, cycle_ns=20.0)
        no_l2 = simulate(base, rd2n4_small)
        with_l2 = simulate(self._two_level_config(), rd2n4_small)
        # Same cycle count basis: both run the same trace; the L2 one
        # uses 40ns in the helper, so rebuild at 20ns for fairness.
        level = self._two_level_config().levels
        with_l2 = simulate(base.with_levels(level), rd2n4_small)
        assert with_l2.cycles < no_l2.cycles

    def test_block_size_validation_across_levels(self):
        base = baseline_config(cache_size_bytes=2 * KB, block_words=16)
        level = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=64 * KB, block_words=4),
        )
        with pytest.raises(ConfigurationError):
            base.with_levels((level,))
