"""System configuration validation and variants."""

import pytest

from repro.core.geometry import CacheGeometry
from repro.core.timing import MemoryTiming
from repro.errors import ConfigurationError
from repro.sim.config import L1Spec, LowerLevelSpec, baseline_config
from repro.units import KB


class TestBaseline:
    def test_paper_defaults(self):
        config = baseline_config()
        assert config.cycle_ns == 40.0
        assert config.l1.total_size_bytes == 128 * KB
        assert config.l1.write_buffer_depth == 4
        assert config.l1.d_geometry.block_words == 4
        assert not config.l1.unified
        assert config.levels == ()

    def test_describe_mentions_both_caches(self):
        text = baseline_config().describe()
        assert "I 64KB" in text and "D 64KB" in text and "40ns" in text


class TestL1Spec:
    def test_split_requires_i_geometry(self):
        with pytest.raises(ConfigurationError):
            L1Spec(d_geometry=CacheGeometry(size_bytes=4 * KB))

    def test_unified_forbids_i_geometry(self):
        with pytest.raises(ConfigurationError):
            L1Spec(
                d_geometry=CacheGeometry(size_bytes=4 * KB),
                i_geometry=CacheGeometry(size_bytes=4 * KB),
                unified=True,
            )

    def test_unified_total_size(self):
        spec = L1Spec(
            d_geometry=CacheGeometry(size_bytes=8 * KB), unified=True
        )
        assert spec.total_size_bytes == 8 * KB

    def test_buffer_depth_validated(self):
        with pytest.raises(ConfigurationError):
            L1Spec(
                d_geometry=CacheGeometry(size_bytes=4 * KB),
                i_geometry=CacheGeometry(size_bytes=4 * KB),
                write_buffer_depth=0,
            )


class TestVariants:
    def test_with_cache_sizes(self):
        config = baseline_config().with_cache_sizes(8 * KB)
        assert config.l1.total_size_bytes == 16 * KB

    def test_with_assoc_preserves_total(self):
        config = baseline_config().with_assoc(4)
        assert config.l1.d_geometry.assoc == 4
        assert config.l1.total_size_bytes == 128 * KB

    def test_with_block_words(self):
        config = baseline_config().with_block_words(16)
        assert config.l1.d_geometry.block_words == 16
        assert config.l1.d_geometry.fetch_words == 16

    def test_with_cycle_ns(self):
        assert baseline_config().with_cycle_ns(25.0).cycle_ns == 25.0

    def test_with_memory(self):
        memory = MemoryTiming(latency_ns=420.0)
        assert baseline_config().with_memory(memory).memory is memory


class TestLevelValidation:
    def test_lower_block_must_cover_upper(self):
        level = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=64 * KB, block_words=2)
        )
        with pytest.raises(ConfigurationError):
            baseline_config().with_levels((level,))

    def test_nonpositive_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            baseline_config().with_cycle_ns(0.0)

    def test_descending_blocks_across_levels_rejected(self):
        l2 = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=64 * KB, block_words=16)
        )
        l3 = LowerLevelSpec(
            geometry=CacheGeometry(size_bytes=256 * KB, block_words=8)
        )
        with pytest.raises(ConfigurationError):
            baseline_config().with_levels((l2, l3))
