"""Page mapping and the §4 physical-cache constraint."""

import pytest

from repro.errors import ConfigurationError
from repro.units import KB
from repro.vm.paging import (
    PageMapper,
    max_physical_cache_bytes,
    min_assoc_for_physical_cache,
)


class TestPageMapper:
    def test_offset_preserved(self):
        mapper = PageMapper(page_words=1024)
        paddr = mapper.translate(1, 1024 + 17)
        assert paddr % 1024 == 17

    def test_stable_mapping(self):
        mapper = PageMapper()
        first = mapper.translate(1, 5000)
        again = mapper.translate(1, 5000)
        assert first == again

    def test_same_page_same_frame(self):
        mapper = PageMapper(page_words=1024)
        a = mapper.translate(1, 2048)
        b = mapper.translate(1, 2048 + 100)
        assert a >> 10 == b >> 10

    def test_pids_get_distinct_frames(self):
        mapper = PageMapper()
        a = mapper.translate(1, 0)
        b = mapper.translate(2, 0)
        assert a != b

    def test_deterministic_given_seed(self):
        a = PageMapper(seed=3)
        b = PageMapper(seed=3)
        for addr in (0, 5000, 123456):
            assert a.translate(1, addr) == b.translate(1, addr)

    def test_pages_mapped_counts(self):
        mapper = PageMapper(page_words=1024)
        mapper.translate(1, 0)
        mapper.translate(1, 100)   # same page
        mapper.translate(1, 2048)  # new page
        assert mapper.pages_mapped == 2

    def test_frames_within_pool(self):
        mapper = PageMapper(page_words=64, memory_frames=8)
        for vpage in range(50):
            paddr = mapper.translate(1, vpage * 64)
            assert paddr >> 6 < 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PageMapper(page_words=100)
        with pytest.raises(ConfigurationError):
            PageMapper(memory_frames=0)
        with pytest.raises(ConfigurationError):
            PageMapper().translate(-1, 0)


class TestConstraint:
    def test_ibm_3033_example(self):
        # §4: the IBM 3033 carries a 16-way 64KB cache because of the
        # virtual-memory constraint (4KB pages).
        assert max_physical_cache_bytes(4 * KB, 16) == 64 * KB
        assert min_assoc_for_physical_cache(64 * KB, 4 * KB) == 16

    def test_direct_mapped_capped_at_page(self):
        assert max_physical_cache_bytes(4 * KB, 1) == 4 * KB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_physical_cache_bytes(0, 1)
        with pytest.raises(ConfigurationError):
            min_assoc_for_physical_cache(0, 4 * KB)
