"""TLB behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.vm.tlb import TLB


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert not tlb.access(1, 10)
        assert tlb.access(1, 10)

    def test_pid_tagged(self):
        tlb = TLB(entries=4)
        tlb.access(1, 10)
        assert not tlb.access(2, 10)

    def test_lru_eviction_fully_associative(self):
        tlb = TLB(entries=2)
        tlb.access(1, 1)
        tlb.access(1, 2)
        tlb.access(1, 1)   # 2 becomes LRU
        tlb.access(1, 3)   # evicts 2
        assert tlb.access(1, 1)
        assert not tlb.access(1, 2)

    def test_set_associative_indexing(self):
        tlb = TLB(entries=4, assoc=2)  # 2 sets
        # Pages 0 and 2 share set 0; pages 1 and 3 share set 1.
        tlb.access(1, 0)
        tlb.access(1, 2)
        tlb.access(1, 4)  # evicts page 0 from set 0
        assert not tlb.access(1, 0)

    def test_miss_ratio(self):
        tlb = TLB(entries=4)
        tlb.access(1, 1)
        tlb.access(1, 1)
        assert tlb.miss_ratio == pytest.approx(0.5)

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.access(1, 1)
        tlb.flush()
        assert not tlb.access(1, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TLB(entries=0)
        with pytest.raises(ConfigurationError):
            TLB(entries=6, assoc=4)
        with pytest.raises(ConfigurationError):
            TLB(entries=12, assoc=2)  # 6 sets, not a power of two
