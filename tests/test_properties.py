"""Property-based tests (hypothesis) on core invariants.

These pin structural properties that must hold for *any* input, not just
the curated examples: cache state invariants, the LRU stack-inclusion
property, replay/engine agreement on random traces, quantization bounds,
scatter bijectivity and trace-IO round-trips.
"""

import io

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.core.geometry import CacheGeometry
from repro.core.policy import CachePolicy, ReplacementKind
from repro.sim.config import baseline_config
from repro.sim.engine import simulate
from repro.sim.fastpath import fast_simulate
from repro.trace.dinero import read_din, round_trip_equal, write_din
from repro.trace.record import Trace
from repro.units import KB, quantize_ns

# Keep hypothesis fast and deterministic-ish for CI-style runs.
FAST = settings(max_examples=30, deadline=None)
MEDIUM = settings(max_examples=12, deadline=None)


addresses = st.integers(min_value=0, max_value=4095)
pids = st.integers(min_value=0, max_value=3)

access_ops = st.lists(
    st.tuples(st.booleans(), pids, addresses), min_size=1, max_size=400
)


@FAST
@given(ops=access_ops, assoc=st.sampled_from([1, 2, 4]))
def test_cache_invariants_hold_under_any_traffic(ops, assoc):
    cache = Cache(
        CacheGeometry(size_bytes=1 * KB, block_words=4, assoc=assoc),
        CachePolicy(replacement=ReplacementKind.LRU),
    )
    for is_write, pid, addr in ops:
        if is_write:
            cache.access_write(pid, addr)
        else:
            cache.access_read(pid, addr)
    cache.check_invariants()


@FAST
@given(ops=access_ops)
def test_read_after_read_always_hits(ops):
    """Reading an address twice in a row must hit the second time."""
    cache = Cache(CacheGeometry(size_bytes=1 * KB, block_words=4))
    for _is_write, pid, addr in ops:
        cache.access_read(pid, addr)
        assert cache.access_read(pid, addr).hit


@FAST
@given(addrs=st.lists(addresses, min_size=1, max_size=300))
def test_fully_associative_lru_inclusion(addrs):
    """The LRU stack property: a fully-associative LRU cache of twice
    the capacity never misses more."""

    def misses(n_blocks):
        cache = Cache(
            CacheGeometry(
                size_bytes=n_blocks * 16, block_words=4, assoc=n_blocks
            ),
            CachePolicy(replacement=ReplacementKind.LRU),
        )
        return sum(0 if cache.access_read(0, a).hit else 1 for a in addrs)

    assert misses(16) <= misses(8)


@FAST
@given(addrs=st.lists(addresses, min_size=1, max_size=200))
def test_miss_count_identical_across_policies_when_direct_mapped(addrs):
    """With one way there is nothing to choose: every replacement policy
    produces the same miss sequence."""

    def misses(kind):
        cache = Cache(
            CacheGeometry(size_bytes=1 * KB, block_words=4, assoc=1),
            CachePolicy(replacement=kind),
        )
        return [cache.access_read(0, a).hit for a in addrs]

    lru = misses(ReplacementKind.LRU)
    assert misses(ReplacementKind.FIFO) == lru
    assert misses(ReplacementKind.RANDOM) == lru


@FAST
@given(
    duration=st.floats(min_value=0.0, max_value=1000.0),
    cycle=st.floats(min_value=1.0, max_value=100.0),
)
def test_quantization_bounds(duration, cycle):
    cycles = quantize_ns(duration, cycle)
    assert cycles * cycle >= duration - 1e-6
    if cycles > 0:
        assert (cycles - 1) * cycle < duration + 1e-6


trace_entries = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 1 << 20), st.integers(0, 5)),
    min_size=1,
    max_size=200,
)


@FAST
@given(entries=trace_entries)
def test_dinero_round_trip_any_trace(entries):
    kinds = [k for k, _a, _p in entries]
    addrs = [a for _k, a, _p in entries]
    trace_pids = [p for _k, _a, p in entries]
    trace = Trace(kinds, addrs, trace_pids)
    buffer = io.StringIO()
    write_din(trace, buffer, with_pids=True)
    buffer.seek(0)
    assert round_trip_equal(trace, read_din(buffer))


@MEDIUM
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2047), st.integers(0, 2)),
        min_size=4,
        max_size=300,
    ),
    size_kb=st.sampled_from([1, 4]),
    cycle_ns=st.sampled_from([24.0, 40.0, 64.0]),
)
def test_fastpath_equals_engine_on_random_traces(entries, size_kb, cycle_ns):
    """The sweep engine's core guarantee, fuzzed: arbitrary reference
    streams price identically through the engine and the fastpath."""
    kinds = [k for k, _a, _p in entries]
    addrs = [a for _k, a, _p in entries]
    trace_pids = [p for _k, _a, p in entries]
    trace = Trace(kinds, addrs, trace_pids)
    config = baseline_config(
        cache_size_bytes=size_kb * KB, cycle_ns=cycle_ns,
        write_buffer_depth=2,
    )
    engine_stats = simulate(config, trace)
    fast_stats = fast_simulate(config, trace)
    assert engine_stats.cycles == fast_stats.cycles
    assert engine_stats.icache == fast_stats.icache
    assert engine_stats.dcache == fast_stats.dcache
    assert engine_stats.buffer == fast_stats.buffer


@MEDIUM
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 4095)),
        min_size=2,
        max_size=200,
    ),
)
def test_cycle_count_decreases_with_cycle_time(entries):
    """The Figure 3-2 effect as an invariant: slower clocks never need
    *more* cycles (memory costs fewer quantized cycles)."""
    kinds = [k for k, _a in entries]
    addrs = [a for _k, a in entries]
    trace = Trace(kinds, addrs, [0] * len(entries))
    config = baseline_config(cache_size_bytes=1 * KB)
    previous = None
    for cycle_ns in (20.0, 40.0, 80.0):
        cycles = fast_simulate(
            config.with_cycle_ns(cycle_ns), trace
        ).cycles
        if previous is not None:
            assert cycles <= previous
        previous = cycles
