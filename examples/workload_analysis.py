#!/usr/bin/env python
"""Analyze a workload's cache behaviour: 3C misses and per-process view.

Beyond reproducing the paper's figures, the library answers the
questions a designer asks about a *specific* workload: where do the
misses come from (compulsory / capacity / conflict), which processes pay
the multiprogramming tax, and how do the curves look — all without a
plotting stack.
"""

from repro import build_trace
from repro.analysis import (
    conflict_removed_by_assoc,
    process_table,
    profile_processes,
)
from repro.core.charts import ascii_chart, sparkline
from repro.sim.config import baseline_config
from repro.sim.fastpath import fast_simulate
from repro.units import KB


def main() -> None:
    trace = build_trace("mu10", length=100_000)
    print(f"workload: {trace.name}, {len(trace)} refs, "
          f"{trace.n_processes} processes\n")

    # 1. Where do the misses come from?  (3C decomposition)
    print("3C decomposition at 8KB per cache, by set size:")
    for assoc, b in conflict_removed_by_assoc(
        trace, size_bytes=8 * KB, assocs=(1, 2, 4)
    ).items():
        print(f"  {assoc}-way: miss {b.miss_ratio:.4f} = "
              f"{b.compulsory} compulsory + {b.capacity} capacity + "
              f"{b.conflict} conflict "
              f"(conflict share {100 * b.conflict_share:.0f}%)")
    print("  -> associativity can only remove the conflict share.\n")

    # 2. Who pays the multiprogramming tax?
    config = baseline_config(cache_size_bytes=4 * KB)
    profiles = profile_processes(trace, config)
    print(process_table(profiles))
    worst = max(profiles, key=lambda p: p.multiprogramming_tax)
    print(f"  -> process {worst.pid} loses most to the mix "
          f"(+{100 * worst.multiprogramming_tax:.1f}% miss ratio).\n")

    # 3. The size curve, drawn.
    sizes = [2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB]
    misses = []
    for size in sizes:
        stats = fast_simulate(baseline_config(cache_size_bytes=size), trace)
        misses.append(stats.read_miss_ratio)
    print(ascii_chart(
        {"read miss": list(zip([2 * s for s in sizes], misses))},
        width=56, height=10, log_x=True,
        title="Miss ratio vs total L1 size",
        x_label="bytes", y_label="miss ratio",
    ))
    print(f"\ntrend: {sparkline(misses)}")


if __name__ == "__main__":
    main()
