#!/usr/bin/env python
"""Quickstart: simulate one cache design on one synthetic trace.

Builds the paper's base system (split 64 KB I and D caches, 4-word
blocks, direct mapped, write-back with a 4-entry write buffer, 40 ns
clock, 180/100/120 ns main memory), runs a multiprogrammed trace through
it, and prints the execution-time-centric statistics the paper argues
for — then shows why miss ratio alone is a deceptive metric by comparing
two machines whose miss ratios and cycle times trade off.
"""

from repro import baseline_config, build_trace, fast_simulate
from repro.units import KB


def main() -> None:
    trace = build_trace("mu3", length=120_000)
    print(f"trace: {trace.name}, {len(trace)} references, "
          f"{trace.n_processes} processes, "
          f"{trace.n_unique_addresses} unique words\n")

    config = baseline_config()
    stats = fast_simulate(config, trace)
    print(f"base system: {config.describe()}")
    print(f"  cycles/reference : {stats.cycles_per_reference:.3f}")
    print(f"  read miss ratio  : {stats.read_miss_ratio:.4f} "
          f"(load {stats.load_miss_ratio:.4f}, "
          f"ifetch {stats.ifetch_miss_ratio:.4f})")
    print(f"  execution time   : {stats.execution_time_ns / 1e6:.3f} ms\n")

    # The paper's core point: execution time, not miss ratio, decides.
    # Machine A: small cache, fast clock.  Machine B: 16x the cache, a
    # slower clock.  A wins on cycle time, B on miss ratio — only the
    # product of cycle count and cycle time settles it.
    machine_a = baseline_config(cache_size_bytes=8 * KB, cycle_ns=40.0)
    machine_b = baseline_config(cache_size_bytes=128 * KB, cycle_ns=50.0)
    stats_a = fast_simulate(machine_a, trace)
    stats_b = fast_simulate(machine_b, trace)
    print("speed vs size, settled by execution time:")
    for label, stats_x in (("A (16KB total, 40ns)", stats_a),
                           ("B (256KB total, 50ns)", stats_b)):
        print(f"  {label}: miss {stats_x.read_miss_ratio:.4f}, "
              f"{stats_x.cycles_per_reference:.3f} cycles/ref, "
              f"{stats_x.execution_time_ns / 1e6:.3f} ms")
    winner = "A" if stats_a.execution_time_ns < stats_b.execution_time_ns else "B"
    print(f"  -> machine {winner} is faster, despite "
          f"{'its higher miss ratio' if winner == 'A' else 'its slower clock'}")


if __name__ == "__main__":
    main()
