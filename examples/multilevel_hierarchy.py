#!/usr/bin/env python
"""The §6 argument: keep a fast CPU fed with a multilevel hierarchy.

At a 20 ns clock the fixed-nanosecond main memory costs 14 cycles per
miss; no affordable L1 keeps up.  Inserting a 256 KB second-level cache
slashes the L1 miss penalty, which (a) restores performance and (b)
*shrinks* the optimal L1 — small, fast first-level caches become viable
again.  This example runs the full engine on both organizations.
"""

from repro import build_trace, simulate
from repro.core.geometry import CacheGeometry
from repro.core.timing import MemoryTiming
from repro.sim.config import LowerLevelSpec, baseline_config
from repro.units import KB


def l2() -> LowerLevelSpec:
    return LowerLevelSpec(
        geometry=CacheGeometry(size_bytes=256 * KB, block_words=16),
        port=MemoryTiming(latency_ns=60.0, transfer_rate=1.0,
                          write_op_ns=0.0, recovery_ns=0.0),
    )


def main() -> None:
    trace = build_trace("rd2n4", length=80_000)
    cycle_ns = 20.0
    print(f"trace {trace.name}, {len(trace)} refs; CPU clock {cycle_ns}ns; "
          "memory 180ns latency (14-cycle miss penalty)\n")
    print(f"{'L1 total':>9} {'no L2':>12} {'with 256KB L2':>14} {'L2 gain':>8}")
    results = {}
    for size_each in (2 * KB, 8 * KB, 32 * KB):
        base = baseline_config(cache_size_bytes=size_each, cycle_ns=cycle_ns)
        flat = simulate(base, trace)
        deep = simulate(base.with_levels((l2(),)), trace)
        results[size_each] = (flat, deep)
        gain = flat.execution_time_ns / deep.execution_time_ns - 1
        print(f"{2 * size_each // 1024:>7}KB "
              f"{flat.execution_time_ns / 1e6:>10.3f}ms "
              f"{deep.execution_time_ns / 1e6:>12.3f}ms "
              f"{100 * gain:>7.0f}%")
    best_flat = min(results, key=lambda s: results[s][0].execution_time_ns)
    best_deep = min(results, key=lambda s: results[s][1].execution_time_ns)
    print(f"\nwithout an L2 the best L1 sampled is {2 * best_flat // 1024}KB "
          f"total; with one it is {2 * best_deep // 1024}KB total — the L2 "
          "reduces the miss penalty, and with it the pressure for a big, "
          "slow first level.  That is the paper's case for multilevel "
          "hierarchies.")


if __name__ == "__main__":
    main()
