#!/usr/bin/env python
"""Design a high-performance workstation's L1: the §3 methodology.

Walks the paper's speed–size tradeoff end to end on the synthetic trace
suite: sweep (cache size x cycle time), draw lines of equal performance,
read off the ns-per-doubling slopes, and answer the engineer's question
from §3 — given a RAM ladder where the next-size-up part is 10 ns
slower, which (size, clock) should the machine use?
"""

from repro import build_suite, run_speed_size_sweep
from repro.core.equal_performance import (
    iso_performance_lines,
    preferred_size_range,
    slope_map,
)
from repro.core.report import cycle_labels, format_grid, size_labels
from repro.units import KB


def main() -> None:
    traces = build_suite(length=120_000, names=["mu3", "savec", "rd2n4", "rd1n3"])
    sizes_each = [2 * KB, 8 * KB, 32 * KB, 128 * KB, 512 * KB]
    cycles = [20.0, 28.0, 40.0, 56.0, 60.0, 80.0]
    print("sweeping", len(sizes_each), "sizes x", len(cycles), "clocks over",
          len(traces), "traces...")
    grid = run_speed_size_sweep(traces, sizes_each, cycles)

    print()
    print(format_grid(
        size_labels(grid.total_sizes), cycle_labels(grid.cycle_times_ns),
        grid.normalized(), corner="TotalL1",
        title="Execution time (normalized to the best design point)",
    ))
    print()
    print(format_grid(
        size_labels(grid.total_sizes), cycle_labels(grid.cycle_times_ns),
        slope_map(grid), corner="TotalL1",
        title="Equal-performance slope: ns of cycle time per size doubling",
        precision=2,
    ))

    print("\nlines of equal performance:")
    for line in iso_performance_lines(grid, n_levels=5):
        points = ", ".join(f"({s // 1024}KB, {c:.0f}ns)" for s, c in line.points)
        print(f"  {line.level:.1f}x: {points or '(unattainable)'}")

    grow, stop = preferred_size_range(grid)
    grow_text = f"~{grow // 1024}KB" if grow else "(none exceeds 10ns/doubling)"
    stop_text = f"~{stop // 1024}KB" if stop else "beyond the sampled range"
    print(f"\npreferred total L1 band: strong growth up to {grow_text}; "
          f"growth stops paying by {stop_text} "
          "(the paper lands on 32-128KB total)")

    # The RAM-ladder question, as the advisor API: which buildable
    # (size, cycle) combination wins with these parts?
    from repro.core.advisor import LadderRung, advisor_table, recommend_design

    ladder = [
        LadderRung(16 * KB, 40.0),    # 15ns 16Kb RAMs
        LadderRung(64 * KB, 50.0),    # 25ns 64Kb RAMs (4x, +10ns)
        LadderRung(256 * KB, 60.0),   # 35ns 256Kb RAMs
    ]
    ranking = recommend_design(grid, ladder)
    print()
    print(advisor_table(ranking))
    best = ranking[0].rung
    print(f"-> build {best.total_size_bytes // 1024}KB total at "
          f"{best.cycle_ns:g}ns; the ns/doubling column says whether the "
          "next RAM generation changes the answer.")


if __name__ == "__main__":
    main()
