#!/usr/bin/env python
"""Choose a block size for a given memory and backplane: §5's method.

The cache miss penalty is la + BS/tr; bigger blocks buy miss ratio but
pay transfer time.  This example sweeps block size against several
memory latencies and bus widths, fits the paper's parabola to find each
memory's performance-optimal block, and verifies the first-order law
that the optimum depends only on the la x tr product.
"""

from repro import build_suite
from repro.core.blocksize import (
    optimal_block_size_words,
    product_law_points,
)
from repro.core.report import format_series, format_table
from repro.core.sweep import run_blocksize_sweep


def main() -> None:
    traces = build_suite(length=120_000, names=["mu3", "rd2n4", "rd1n3"])
    print("sweeping block sizes x memory speeds...")
    curves = run_blocksize_sweep(
        traces,
        block_sizes_words=[2, 4, 8, 16, 32, 64],
        latencies_ns=[100.0, 260.0, 420.0],
        transfer_rates=[4.0, 1.0, 0.25],
    )

    rows = []
    for (latency, rate), curve in sorted(curves.items()):
        norm = curve.execution_ns / curve.execution_ns.min()
        rows.append([
            f"{latency}cyc", f"{rate:g}W/c",
            *[f"{v:.3f}" for v in norm],
            f"{optimal_block_size_words(curve):.1f}W",
        ])
    print()
    print(format_table(
        ["Latency", "Bus"] + [f"{b}W" for b in (2, 4, 8, 16, 32, 64)]
        + ["Optimal"],
        rows,
        title="Execution time vs block size (each row normalized to its best)",
    ))

    points = product_law_points(curves)
    print()
    print(format_series(
        [f"{p.speed_product:g}" for p in points],
        [f"{p.optimal_block_words:.1f}" for p in points],
        "la*tr", "optimal block (W)",
        title="The product law: optimum vs latency x transfer rate",
    ))
    print("\nReading: the optimum rises with la*tr and is independent of "
          "la and tr separately; for the central design space it stays "
          "near 4-8 words — much smaller than the miss-ratio optimum.")


if __name__ == "__main__":
    main()
