#!/usr/bin/env python
"""Should this cache be set associative?  The §4 break-even method.

For a TTL-component machine, adding set associativity costs cycle time
(a multiplexor in the data path, wider RAMs, heavier loading).  The
paper's method prices the miss-ratio benefit in nanoseconds of cycle
time and compares it against the component costs: a 6 ns data delay or
an 11 ns select delay for an Advanced-Schottky multiplexor.
"""

from repro import build_suite, run_associativity_sweeps
from repro.core.associativity import (
    AS_MUX_DATA_NS,
    AS_MUX_SELECT_NS,
    breakeven_map,
    smooth_column,
    summarize_breakeven,
)
from repro.core.report import cycle_labels, format_grid, size_labels
from repro.units import KB


def main() -> None:
    traces = build_suite(length=120_000, names=["mu3", "mu10", "rd2n4", "rd1n5"])
    sizes_each = [2 * KB, 8 * KB, 32 * KB, 128 * KB]
    cycles = [20.0, 28.0, 40.0, 56.0, 60.0, 80.0]
    print("sweeping associativities 1/2/4 over the design space...")
    grids = run_associativity_sweeps(
        traces, sizes_each, cycles, assocs=(1, 2, 4)
    )
    dm = smooth_column(grids[1])  # footnote 9's 56ns smoothing
    for assoc in (2, 4):
        sa = smooth_column(grids[assoc])
        bmap = breakeven_map(dm, sa)
        print()
        print(format_grid(
            size_labels(dm.total_sizes), cycle_labels(dm.cycle_times_ns),
            bmap, corner="TotalL1",
            title=f"{assoc}-way break-even cycle-time slack (ns)",
            precision=2,
        ))
        summary = summarize_breakeven(dm, sa, assoc)
        verdict = (
            "might pay off in an integrated design"
            if summary.worthwhile_vs_as_mux
            else "does not pay for discrete TTL parts"
        )
        print(f"{assoc}-way: max slack {summary.max_breakeven_ns:.1f}ns at "
              f"{summary.max_at_total_size // 1024}KB total; vs the "
              f"{AS_MUX_DATA_NS:g}ns AS mux data delay it {verdict} "
              f"(select delay {AS_MUX_SELECT_NS:g}ns is out of reach).")


if __name__ == "__main__":
    main()
