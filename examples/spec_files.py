#!/usr/bin/env python
"""The paper's §2 front end: specification files plus variations.

"The macro expansion phase begins with pointers to a system
specification file and two or three variation files."  This example
saves the base system as JSON, applies variation overlays (set size,
cycle time, memory latency — the paper's own examples), and simulates
each variant, all without touching Python configuration code.
"""

import json
import tempfile
from pathlib import Path

from repro import baseline_config, build_trace
from repro.sim.fastpath import fast_simulate
from repro.sim.specfiles import load_spec, save_spec


def main() -> None:
    trace = build_trace("savec", length=80_000)
    workdir = Path(tempfile.mkdtemp(prefix="repro-spec-"))
    base_path = workdir / "base_system.json"
    save_spec(baseline_config(), base_path)
    print(f"specification written to {base_path}")

    variations = {
        "base system": [],
        "two-way set associative": [
            {"l1.d_geometry.assoc": 2, "l1.i_geometry.assoc": 2}
        ],
        "56ns clock (the quantization trap)": [{"cycle_ns": 56.0}],
        "slow memory board (420ns)": [
            {"memory.latency_ns": 420.0, "memory.write_op_ns": 420.0,
             "memory.recovery_ns": 420.0}
        ],
        "two-way AND slow memory": [
            {"l1.d_geometry.assoc": 2, "l1.i_geometry.assoc": 2},
            {"memory.latency_ns": 420.0, "memory.write_op_ns": 420.0,
             "memory.recovery_ns": 420.0},
        ],
    }
    print(f"\n{'variant':<36} {'miss':>7} {'exec (ms)':>10}")
    for label, overlays in variations.items():
        # Variations can also live in files; inline dicts behave the
        # same way and later overlays win.
        files = []
        for k, overlay in enumerate(overlays):
            path = workdir / f"{label.replace(' ', '_')}_{k}.json"
            path.write_text(json.dumps(overlay))
            files.append(path)
        config = load_spec(base_path, files)
        stats = fast_simulate(config, trace)
        print(f"{label:<36} {stats.read_miss_ratio:>7.4f} "
              f"{stats.execution_time_ns / 1e6:>10.3f}")
    print(f"\nvariation files kept under {workdir}")


if __name__ == "__main__":
    main()
