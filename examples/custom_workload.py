#!/usr/bin/env python
"""Bring your own workload: custom program models and trace export.

Shows the extension surface of the trace substrate: define a
WorkloadSpec for a program class the presets don't cover (here, a
garbage-collected interpreter: modest code, large heap, periodic
whole-heap sweeps), interleave it with stock presets, export the trace
in dinero format, and compare cache behaviour against a stock mix.
"""

import io

from repro import baseline_config, fast_simulate
from repro.trace import (
    Program,
    WorkloadSpec,
    interleave,
    make_program,
    write_din,
)
from repro.units import KB


def interpreter_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="gc_interpreter",
        code_words=24 * 1024 // 4,      # 24KB dispatch loop + runtime
        mean_loop_body=10.0,            # short bytecode handlers
        mean_loop_iters=2.0,            # dispatch rarely repeats a handler
        p_revisit=0.80,                 # but the handler set is hot
        data_words=512 * 1024 // 4,     # 512KB heap
        init_words=6000,
        p_data=0.55,
        p_store_given_data=0.35,
        p_sequential=0.35,              # GC sweeps and allocation runs
        p_reuse=0.60,
        mean_run=24.0,
        reuse_mid_mean=4096.0,          # object graphs reach far
        p_near=0.45,
        p_mid=0.35,
    )


def main() -> None:
    interpreter = Program(interpreter_spec(), pid=1, seed=7)
    editor = make_program("emacs", pid=2, seed=8)
    compiler = make_program("ccom", pid=3, seed=9)
    trace = interleave(
        [interpreter, editor, compiler], length=100_000,
        mean_switch_interval=4000, name="gc_mix",
        warm_boundary=30_000,
    )
    print(f"built {trace.name}: {len(trace)} refs, "
          f"{trace.n_unique_addresses} unique words")

    buffer = io.StringIO()
    write_din(trace, buffer, with_pids=True)
    print(f"dinero export: {len(buffer.getvalue().splitlines())} lines "
          "(feedable to any din-format simulator)\n")

    print(f"{'cache each':>10} {'gc_mix miss':>12}")
    for size in (8 * KB, 32 * KB, 128 * KB):
        stats = fast_simulate(baseline_config(cache_size_bytes=size), trace)
        print(f"{size // 1024:>8}KB {stats.read_miss_ratio:>12.4f}")
    print("\nThe interpreter's far-reaching heap reuse keeps the miss "
          "ratio falling at sizes where the stock mixes have flattened — "
          "exactly the kind of workload question the library is for.")


if __name__ == "__main__":
    main()
